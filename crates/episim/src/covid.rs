//! The COVID-Chicago-style stochastic SEIR model (paper Fig 1).
//!
//! Compartment graph, with `u`/`d` marking undetected/detected strata
//! (detected individuals isolate and transmit less):
//!
//! ```text
//!            ┌────────────► As_u/As_d ────────────────┐
//!            │                                        ▼
//! S ──► E ───┤                                        R
//!            │                                        ▲
//!            └──► P_u/P_d ──┬──► Sm_u/Sm_d ───────────┤
//!                           │                         │
//!                           └──► Ss_u/Ss_d ──► H ──┬──┘
//!                                                  │
//!                                             C ◄──┘
//!                                             │ ├──► Hp ──► R
//!                                             └──► D
//! ```
//!
//! Detection is resolved at entry into each infectious stage (a fraction
//! of entrants are detected after their presymptomatic/asymptomatic or
//! symptomatic onset), matching the reference model's time-varying
//! detection fractions held constant within a run.
//!
//! The six parameters the paper's checkpoint restart can override
//! (Section III-B) are all first-class fields of [`CovidParams`]:
//! the random seed (via [`crate::SimCheckpoint::restore_with_seed`]),
//! `frac_symptomatic` (E to P split), `frac_severe` (P to Sm split),
//! `rel_infectious_asymp`, `rel_infectious_detected`, and
//! `transmission_rate`.

use serde::{Deserialize, Serialize};

use crate::spec::{
    CensusSpec, Compartment, CompartmentId, FlowSpec, Infection, ModelSpec, Progression,
};
use crate::state::SimState;

/// Compartment ids of the COVID model, in spec order.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum C {
    S = 0,
    E = 1,
    AsU = 2,
    AsD = 3,
    PU = 4,
    PD = 5,
    SmU = 6,
    SmD = 7,
    SsU = 8,
    SsD = 9,
    H = 10,
    Icu = 11,
    Hp = 12,
    D = 13,
    R = 14,
}

impl C {
    /// The compartment's index in the model spec.
    pub fn id(self) -> CompartmentId {
        self as CompartmentId
    }
}

/// All parameters of the COVID model.
///
/// Durations are in days; fractions and probabilities in `[0, 1]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CovidParams {
    /// Transmission rate `theta` — the paper's calibration parameter.
    pub transmission_rate: f64,
    /// Total population.
    pub population: u64,
    /// Individuals initially in E (day 0).
    pub initial_exposed: u64,

    /// Mean latent (E) duration.
    pub latent_period: f64,
    /// Mean presymptomatic (P) duration.
    pub presymp_duration: f64,
    /// Mean asymptomatic (As) infectious duration.
    pub asymp_duration: f64,
    /// Mean mild-symptomatic (Sm) duration until recovery.
    pub mild_duration: f64,
    /// Mean severe-symptomatic (Ss) duration until hospitalization.
    pub severe_to_hosp: f64,
    /// Mean pre-critical hospital (H) stay.
    pub hosp_duration: f64,
    /// Mean ICU (C) stay.
    pub icu_duration: f64,
    /// Mean post-ICU hospital (Hp) stay.
    pub post_icu_duration: f64,

    /// Fraction of exposed becoming presymptomatic (vs asymptomatic) —
    /// the "fraction E to P" checkpoint parameter.
    pub frac_symptomatic: f64,
    /// Fraction of presymptomatic developing severe (vs mild) symptoms —
    /// `1 -` the "fraction P to Sm" checkpoint parameter.
    pub frac_severe: f64,
    /// Fraction of hospitalized progressing to critical (ICU).
    pub frac_critical: f64,
    /// Fraction of critical cases dying.
    pub frac_fatal: f64,

    /// Detection probability for asymptomatic infections.
    pub detect_asymp: f64,
    /// Detection probability at the presymptomatic stage.
    pub detect_presymp: f64,
    /// Detection probability for mild symptomatic cases.
    pub detect_mild: f64,
    /// Detection probability for severe symptomatic cases.
    pub detect_severe: f64,

    /// Relative infectiousness of asymptomatic/presymptomatic vs
    /// symptomatic individuals.
    pub rel_infectious_asymp: f64,
    /// Relative infectiousness of detected (isolating) vs undetected
    /// individuals.
    pub rel_infectious_detected: f64,

    /// Erlang stages for the latent compartment.
    pub latent_stages: u32,
    /// Erlang stages for every other non-terminal compartment.
    pub progression_stages: u32,
}

impl Default for CovidParams {
    /// Chicago-scale defaults with literature-style disease parameters
    /// (see DESIGN.md: values follow the COVID-Chicago reference model's
    /// published magnitudes).
    fn default() -> Self {
        Self {
            transmission_rate: 0.30,
            population: 2_700_000,
            initial_exposed: 300,
            latent_period: 3.5,
            presymp_duration: 2.1,
            asymp_duration: 7.0,
            mild_duration: 7.0,
            severe_to_hosp: 4.5,
            hosp_duration: 6.0,
            icu_duration: 10.0,
            post_icu_duration: 5.0,
            frac_symptomatic: 0.65,
            frac_severe: 0.08,
            frac_critical: 0.25,
            frac_fatal: 0.40,
            detect_asymp: 0.05,
            detect_presymp: 0.10,
            detect_mild: 0.40,
            detect_severe: 0.80,
            rel_infectious_asymp: 0.75,
            rel_infectious_detected: 0.30,
            latent_stages: 3,
            progression_stages: 2,
        }
    }
}

impl CovidParams {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        let fractions = [
            ("frac_symptomatic", self.frac_symptomatic),
            ("frac_severe", self.frac_severe),
            ("frac_critical", self.frac_critical),
            ("frac_fatal", self.frac_fatal),
            ("detect_asymp", self.detect_asymp),
            ("detect_presymp", self.detect_presymp),
            ("detect_mild", self.detect_mild),
            ("detect_severe", self.detect_severe),
        ];
        for (name, v) in fractions {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0, 1]"));
            }
        }
        let durations = [
            ("latent_period", self.latent_period),
            ("presymp_duration", self.presymp_duration),
            ("asymp_duration", self.asymp_duration),
            ("mild_duration", self.mild_duration),
            ("severe_to_hosp", self.severe_to_hosp),
            ("hosp_duration", self.hosp_duration),
            ("icu_duration", self.icu_duration),
            ("post_icu_duration", self.post_icu_duration),
        ];
        for (name, v) in durations {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} = {v} must be positive"));
            }
        }
        if !(self.transmission_rate.is_finite() && self.transmission_rate >= 0.0) {
            return Err(format!("transmission_rate = {}", self.transmission_rate));
        }
        for (name, v) in [
            ("rel_infectious_asymp", self.rel_infectious_asymp),
            ("rel_infectious_detected", self.rel_infectious_detected),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} = {v} must be non-negative"));
            }
        }
        if self.initial_exposed > self.population {
            return Err("initial_exposed exceeds population".into());
        }
        if self.latent_stages == 0 || self.progression_stages == 0 {
            return Err("Erlang stage counts must be >= 1".into());
        }
        Ok(())
    }

    /// Rough basic reproduction number implied by the parameters
    /// (transmission rate times the detection-weighted mean infectious
    /// duration) — a diagnostic, not used by the engine.
    pub fn approx_r0(&self) -> f64 {
        let fs = self.frac_symptomatic;
        let ka = self.rel_infectious_asymp;
        // Mean weighted infectious person-days per infection, ignoring the
        // (small) detected fraction.
        let asymp = (1.0 - fs) * ka * self.asymp_duration;
        let presym = fs * ka * self.presymp_duration;
        let sym = fs
            * ((1.0 - self.frac_severe) * self.mild_duration
                + self.frac_severe * self.severe_to_hosp);
        self.transmission_rate * (asymp + presym + sym)
    }
}

/// The COVID model: validated parameters plus the compiled spec builder.
#[derive(Clone, Debug)]
pub struct CovidModel {
    params: CovidParams,
}

impl CovidModel {
    /// Create a model from validated parameters.
    ///
    /// # Errors
    /// Propagates [`CovidParams::validate`] failures.
    pub fn new(params: CovidParams) -> Result<Self, String> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &CovidParams {
        &self.params
    }

    /// Build the declarative model spec for the current parameters.
    pub fn spec(&self) -> ModelSpec {
        let p = &self.params;
        let ka = p.rel_infectious_asymp;
        let kd = p.rel_infectious_detected;
        let st = p.progression_stages;

        let compartments = vec![
            Compartment::simple("S"),
            Compartment::new("E", p.latent_stages, 0.0),
            Compartment::new("As_u", st, ka),
            Compartment::new("As_d", st, ka * kd),
            Compartment::new("P_u", st, ka),
            Compartment::new("P_d", st, ka * kd),
            Compartment::new("Sm_u", st, 1.0),
            Compartment::new("Sm_d", st, kd),
            Compartment::new("Ss_u", st, 1.0),
            Compartment::new("Ss_d", st, kd),
            Compartment::new("H", st, 0.0),
            Compartment::new("C", st, 0.0),
            Compartment::new("Hp", st, 0.0),
            Compartment::simple("D"),
            Compartment::simple("R"),
        ];

        let fs = p.frac_symptomatic;
        let fsev = p.frac_severe;
        use C::*;
        let progressions = vec![
            Progression {
                from: E.id(),
                mean_dwell: p.latent_period,
                branches: vec![
                    (AsU.id(), (1.0 - fs) * (1.0 - p.detect_asymp)),
                    (AsD.id(), (1.0 - fs) * p.detect_asymp),
                    (PU.id(), fs * (1.0 - p.detect_presymp)),
                    (PD.id(), fs * p.detect_presymp),
                ],
            },
            Progression {
                from: AsU.id(),
                mean_dwell: p.asymp_duration,
                branches: vec![(R.id(), 1.0)],
            },
            Progression {
                from: AsD.id(),
                mean_dwell: p.asymp_duration,
                branches: vec![(R.id(), 1.0)],
            },
            Progression {
                from: PU.id(),
                mean_dwell: p.presymp_duration,
                branches: vec![
                    (SmU.id(), (1.0 - fsev) * (1.0 - p.detect_mild)),
                    (SmD.id(), (1.0 - fsev) * p.detect_mild),
                    (SsU.id(), fsev * (1.0 - p.detect_severe)),
                    (SsD.id(), fsev * p.detect_severe),
                ],
            },
            Progression {
                from: PD.id(),
                mean_dwell: p.presymp_duration,
                branches: vec![(SmD.id(), 1.0 - fsev), (SsD.id(), fsev)],
            },
            Progression {
                from: SmU.id(),
                mean_dwell: p.mild_duration,
                branches: vec![(R.id(), 1.0)],
            },
            Progression {
                from: SmD.id(),
                mean_dwell: p.mild_duration,
                branches: vec![(R.id(), 1.0)],
            },
            Progression {
                from: SsU.id(),
                mean_dwell: p.severe_to_hosp,
                branches: vec![(H.id(), 1.0)],
            },
            Progression {
                from: SsD.id(),
                mean_dwell: p.severe_to_hosp,
                branches: vec![(H.id(), 1.0)],
            },
            Progression {
                from: H.id(),
                mean_dwell: p.hosp_duration,
                branches: vec![(Icu.id(), p.frac_critical), (R.id(), 1.0 - p.frac_critical)],
            },
            Progression {
                from: Icu.id(),
                mean_dwell: p.icu_duration,
                branches: vec![(D.id(), p.frac_fatal), (Hp.id(), 1.0 - p.frac_fatal)],
            },
            Progression {
                from: Hp.id(),
                mean_dwell: p.post_icu_duration,
                branches: vec![(R.id(), 1.0)],
            },
        ];

        ModelSpec {
            name: "covid-chicago".into(),
            compartments,
            progressions,
            infections: vec![Infection::simple(S.id(), E.id())],
            transmission_rate: p.transmission_rate,
            flows: vec![
                FlowSpec {
                    name: "infections".into(),
                    edges: vec![(S.id(), E.id())],
                },
                FlowSpec {
                    name: "deaths".into(),
                    edges: vec![(Icu.id(), D.id())],
                },
                FlowSpec {
                    name: "detected".into(),
                    edges: vec![
                        (E.id(), AsD.id()),
                        (E.id(), PD.id()),
                        (PU.id(), SmD.id()),
                        (PU.id(), SsD.id()),
                    ],
                },
                FlowSpec {
                    name: "hospitalizations".into(),
                    edges: vec![(SsU.id(), H.id()), (SsD.id(), H.id())],
                },
            ],
            censuses: vec![
                CensusSpec {
                    name: "hospital_census".into(),
                    compartments: vec![H.id(), Icu.id(), Hp.id()],
                },
                CensusSpec {
                    name: "icu_census".into(),
                    compartments: vec![Icu.id()],
                },
            ],
        }
    }

    /// Initial state: everyone susceptible except `initial_exposed` in E.
    pub fn initial_state(&self, seed: u64) -> SimState {
        self.initial_state_in(&self.spec(), seed)
    }

    /// [`Self::initial_state`] against an already-built spec for this
    /// model (e.g. out of a cached [`crate::engine::CompiledSpec`]),
    /// skipping the per-call spec rebuild — the hot-path variant used by
    /// the calibration grid.
    pub fn initial_state_in(&self, spec: &ModelSpec, seed: u64) -> SimState {
        let mut st = SimState::empty(spec, seed);
        st.seed_compartment(
            spec,
            C::S.id(),
            self.params.population - self.params.initial_exposed,
        );
        st.seed_compartment(spec, C::E.id(), self.params.initial_exposed);
        st
    }

    /// Clone of the parameters with a different transmission rate — the
    /// common re-parameterization in the calibration loop.
    pub fn with_transmission_rate(&self, theta: f64) -> CovidParams {
        CovidParams {
            transmission_rate: theta,
            ..self.params.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BinomialChainStepper;
    use crate::runner::Simulation;

    fn small_params() -> CovidParams {
        CovidParams {
            population: 50_000,
            initial_exposed: 100,
            ..CovidParams::default()
        }
    }

    #[test]
    fn default_params_validate_and_build() {
        let m = CovidModel::new(CovidParams::default()).unwrap();
        let spec = m.spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.compartments.len(), 15);
        assert_eq!(spec.compartment_id("Ss_d"), Some(C::SsD.id()));
    }

    #[test]
    fn r0_in_plausible_range() {
        let r0 = CovidParams::default().approx_r0();
        assert!(r0 > 1.2 && r0 < 3.0, "r0 = {r0}");
    }

    #[test]
    fn epidemic_produces_cases_and_deaths() {
        let m = CovidModel::new(small_params()).unwrap();
        let mut sim =
            Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(42)).unwrap();
        sim.run_until(120);
        let inf: u64 = sim.series().series("infections").unwrap().iter().sum();
        let deaths: u64 = sim.series().series("deaths").unwrap().iter().sum();
        let detected: u64 = sim.series().series("detected").unwrap().iter().sum();
        assert!(inf > 1_000, "infections = {inf}");
        assert!(deaths > 0, "deaths = {deaths}");
        assert!(detected > 0 && detected < inf);
        // Deaths are a small fraction of infections (IFR well below 5%).
        assert!((deaths as f64) < 0.05 * inf as f64);
        // Population conserved.
        assert_eq!(sim.state().total_population(), 50_000);
    }

    #[test]
    fn deaths_lag_infections() {
        let m = CovidModel::new(small_params()).unwrap();
        let mut sim =
            Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(7)).unwrap();
        sim.run_until(60);
        let deaths = sim.series().series("deaths").unwrap();
        // The death pipeline is ~latent + presymp + severe + hosp + icu
        // ~ 25 days; no deaths in the first ten days.
        let early: u64 = deaths[..10].iter().sum();
        assert_eq!(early, 0, "deaths in first 10 days: {early}");
    }

    #[test]
    fn higher_transmission_more_infections() {
        let mut totals = Vec::new();
        for theta in [0.15, 0.45] {
            let params = CovidParams {
                transmission_rate: theta,
                ..small_params()
            };
            let m = CovidModel::new(params).unwrap();
            let mut sim =
                Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(9))
                    .unwrap();
            sim.run_until(80);
            totals.push(
                sim.series()
                    .series("infections")
                    .unwrap()
                    .iter()
                    .sum::<u64>(),
            );
        }
        assert!(totals[1] > 3 * totals[0], "{totals:?}");
    }

    #[test]
    fn branch_probabilities_validated() {
        let bad = CovidParams {
            frac_symptomatic: 1.4,
            ..CovidParams::default()
        };
        assert!(CovidModel::new(bad).is_err());
        let bad2 = CovidParams {
            latent_period: 0.0,
            ..CovidParams::default()
        };
        assert!(CovidModel::new(bad2).is_err());
        let bad3 = CovidParams {
            initial_exposed: 10,
            population: 5,
            ..CovidParams::default()
        };
        assert!(CovidModel::new(bad3).is_err());
    }

    #[test]
    fn gillespie_agrees_with_chain_binomial_on_the_full_graph() {
        // Stepper-fidelity check on the complete Fig 1 compartment graph
        // (not just the SEIR toy): cumulative infections and deaths from
        // the exact CTMC and the sub-daily chain-binomial agree in the
        // mean within Monte Carlo tolerance.
        use crate::engine::{GillespieStepper, Stepper};
        let m = CovidModel::new(CovidParams {
            population: 4_000,
            initial_exposed: 40,
            transmission_rate: 0.4,
            ..CovidParams::default()
        })
        .unwrap();
        let run = |stepper: &dyn Stepper, seed: u64| -> (f64, f64) {
            let model = crate::engine::CompiledSpec::new(m.spec()).unwrap();
            let mut st = m.initial_state(seed);
            let n_flows = model.spec.flows.len();
            let mut flows = vec![0u64; n_flows];
            let mut sc = crate::engine::StepScratch::default();
            for _ in 0..80 {
                stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
            }
            assert_eq!(st.total_population(), 4_000);
            (flows[0] as f64, flows[1] as f64) // infections, deaths
        };
        let reps = 8u64;
        let (mut gi, mut gd, mut ci, mut cd) = (0.0, 0.0, 0.0, 0.0);
        for s in 0..reps {
            let (i, d) = run(&GillespieStepper::new(), 300 + s);
            gi += i;
            gd += d;
            let (i, d) = run(&BinomialChainStepper::with_substeps(8), 600 + s);
            ci += i;
            cd += d;
        }
        let rel = (gi - ci).abs() / gi.max(1.0);
        assert!(
            rel < 0.10,
            "infections: gillespie {gi:.0} vs chain {ci:.0} ({rel:.3})"
        );
        // Deaths are sparse; allow a loose band.
        assert!(
            (gd - cd).abs() <= 3.0 * (gd.max(cd)).sqrt().max(4.0),
            "deaths: gillespie {gd:.0} vs chain {cd:.0}"
        );
    }

    #[test]
    fn checkpoint_reparameterization_round_trip() {
        let m = CovidModel::new(small_params()).unwrap();
        let mut sim =
            Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(5)).unwrap();
        sim.run_until(30);
        let ck = sim.checkpoint();
        // New theta, same layout: restore must succeed.
        let m2 = CovidModel::new(m.with_transmission_rate(0.5)).unwrap();
        let mut resumed =
            Simulation::resume_with_seed(m2.spec(), BinomialChainStepper::daily(), &ck, 77)
                .unwrap();
        resumed.run_until(60);
        assert_eq!(resumed.state().day, 60);
        // Changing the stage structure breaks the layout: restore fails.
        let m3 = CovidModel::new(CovidParams {
            latent_stages: 5,
            ..small_params()
        })
        .unwrap();
        assert!(
            Simulation::resume_with_seed(m3.spec(), BinomialChainStepper::daily(), &ck, 1).is_err()
        );
    }
}
