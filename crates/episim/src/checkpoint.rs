//! Full-state checkpointing with parameter-overriding restarts.
//!
//! The paper (Section III-B) makes checkpointing a first-class citizen of
//! the inference loop: the sequential calibrator stores each posterior
//! particle's exact simulator state at a window boundary and later
//! *restarts it with new parameter values*, branching a fresh trajectory
//! without replaying history. Because `episim` keeps all dwell-time
//! memory in Erlang stage counts, a checkpoint is exactly
//! `(day, stage_counts, rng_state)` — compact, exact, and cheap.
//!
//! Two encodings are provided: a compact binary framing (via [`bytes`])
//! for high-volume particle storage, and serde/JSON for human-debuggable
//! artifacts; both round-trip bit-exactly.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use epistats::rng::Xoshiro256PlusPlus;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::SimError;
use crate::spec::ModelSpec;
use crate::state::SimState;

/// Process-wide count of [`SimCheckpoint`] deep clones.
static DEEP_CLONES: AtomicU64 = AtomicU64::new(0);

/// Total `SimCheckpoint::clone` calls since process start. Each clone
/// duplicates the full `stage_counts` buffer; inference code is expected
/// to share checkpoints behind `Arc` instead, so a calibration's
/// resample/jitter path should leave this counter untouched — the
/// counting test in `epismc` asserts exactly that.
pub fn deep_clone_count() -> u64 {
    DEEP_CLONES.load(Ordering::Relaxed)
}

/// Magic bytes heading the binary encoding.
const MAGIC: u32 = 0x4550_4953; // "EPIS"
/// Binary format version.
const VERSION: u16 = 1;

/// A serialized simulation state, restorable onto a compatible model.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// Fingerprint of the model layout this state belongs to (compartment
    /// names and stage structure). Restoring onto a model with a
    /// different layout is rejected.
    pub layout_hash: u64,
    /// Simulated day at capture time.
    pub day: u32,
    /// Flattened Erlang stage occupancies.
    pub stage_counts: Vec<u64>,
    /// RNG state at capture time.
    pub rng_state: [u64; 4],
}

impl Clone for SimCheckpoint {
    /// Deep copy, counted by [`deep_clone_count`]. Hot paths should
    /// share checkpoints behind `Arc` (one heap buffer for any number of
    /// resampled siblings) and reserve `clone` for code that genuinely
    /// needs an independent mutable copy.
    fn clone(&self) -> Self {
        DEEP_CLONES.fetch_add(1, Ordering::Relaxed);
        Self {
            layout_hash: self.layout_hash,
            day: self.day,
            stage_counts: self.stage_counts.clone(),
            rng_state: self.rng_state,
        }
    }
}

/// FNV-1a hash of the model layout (names, stage counts) — parameter
/// *values* are deliberately excluded so a restart may change them.
pub fn layout_hash(spec: &ModelSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for c in &spec.compartments {
        absorb(c.name.as_bytes());
        absorb(&c.stages.to_le_bytes());
    }
    h
}

impl SimCheckpoint {
    /// Capture the current state of a run.
    pub fn capture(spec: &ModelSpec, state: &SimState) -> Self {
        Self {
            layout_hash: layout_hash(spec),
            day: state.day,
            stage_counts: state.stage_counts.clone(),
            rng_state: state.rng.state(),
        }
    }

    /// Restore to a live state under the given (possibly re-parameterized)
    /// spec.
    ///
    /// # Errors
    /// Returns [`SimError::Checkpoint`] if the spec's layout differs from
    /// the one the checkpoint was captured under.
    pub fn restore(&self, spec: &ModelSpec) -> Result<SimState, SimError> {
        self.validate_layout(spec)?;
        Ok(SimState {
            day: self.day,
            time: self.day as f64,
            stage_counts: self.stage_counts.clone(),
            rng: Xoshiro256PlusPlus::from_state(self.rng_state),
        })
    }

    /// Restore with a *fresh RNG stream* instead of the captured one —
    /// the paper's trajectory-branching restart (new random seed,
    /// Section III-B item 1).
    ///
    /// # Errors
    /// Same layout checks as [`Self::restore`].
    pub fn restore_with_seed(&self, spec: &ModelSpec, seed: u64) -> Result<SimState, SimError> {
        let mut st = self.restore(spec)?;
        st.rng = Xoshiro256PlusPlus::new(seed);
        Ok(st)
    }

    /// Restore *into* an existing state, reusing its `stage_counts`
    /// allocation — the pooled-workspace variant of [`Self::restore`].
    ///
    /// # Errors
    /// Same layout checks as [`Self::restore`]; on error `state` is left
    /// unmodified.
    pub fn restore_into(&self, spec: &ModelSpec, state: &mut SimState) -> Result<(), SimError> {
        self.validate_layout(spec)?;
        state.day = self.day;
        state.time = self.day as f64;
        state.stage_counts.clone_from(&self.stage_counts);
        state.rng = Xoshiro256PlusPlus::from_state(self.rng_state);
        Ok(())
    }

    /// Restore into an existing state with a fresh RNG stream — the
    /// in-place variant of [`Self::restore_with_seed`].
    ///
    /// # Errors
    /// Same layout checks as [`Self::restore`]; on error `state` is left
    /// unmodified.
    pub fn restore_into_with_seed(
        &self,
        spec: &ModelSpec,
        state: &mut SimState,
        seed: u64,
    ) -> Result<(), SimError> {
        self.restore_into(spec, state)?;
        state.rng = Xoshiro256PlusPlus::new(seed);
        Ok(())
    }

    /// Shared layout/length validation for the restore family.
    fn validate_layout(&self, spec: &ModelSpec) -> Result<(), SimError> {
        if layout_hash(spec) != self.layout_hash {
            return Err(SimError::Checkpoint(format!(
                "layout mismatch for model '{}': captured under a different compartment structure",
                spec.name
            )));
        }
        if self.stage_counts.len() != spec.total_stages() {
            return Err(SimError::Checkpoint("stage-count length mismatch".into()));
        }
        Ok(())
    }

    /// Compact binary encoding.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + 8 * self.stage_counts.len() + 32);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u64_le(self.layout_hash);
        buf.put_u32_le(self.day);
        buf.put_u32_le(self.stage_counts.len() as u32);
        for &c in &self.stage_counts {
            buf.put_u64_le(c);
        }
        for &s in &self.rng_state {
            buf.put_u64_le(s);
        }
        buf.freeze()
    }

    /// Decode the binary encoding.
    ///
    /// # Errors
    /// Returns [`SimError::Checkpoint`] on truncation, bad magic, or an
    /// unknown version.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, SimError> {
        if data.remaining() < 22 {
            return Err(SimError::Checkpoint("truncated header".into()));
        }
        if data.get_u32_le() != MAGIC {
            return Err(SimError::Checkpoint("bad magic".into()));
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(SimError::Checkpoint(format!(
                "unsupported version {version}"
            )));
        }
        let layout = data.get_u64_le();
        let day = data.get_u32_le();
        let n = data.get_u32_le() as usize;
        if data.remaining() < 8 * (n + 4) {
            return Err(SimError::Checkpoint("truncated body".into()));
        }
        let mut stage_counts = Vec::with_capacity(n);
        for _ in 0..n {
            stage_counts.push(data.get_u64_le());
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = data.get_u64_le();
        }
        Ok(Self {
            layout_hash: layout,
            day,
            stage_counts,
            rng_state,
        })
    }

    /// Size of the binary encoding in bytes.
    pub fn encoded_len(&self) -> usize {
        22 + 8 * (self.stage_counts.len() + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Compartment, FlowSpec, Infection, Progression};

    fn spec() -> ModelSpec {
        ModelSpec {
            name: "ck".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("I", 2, 1.0),
                Compartment::simple("R"),
            ],
            progressions: vec![Progression {
                from: 1,
                mean_dwell: 5.0,
                branches: vec![(2, 1.0)],
            }],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: 0.3,
            flows: vec![FlowSpec {
                name: "inf".into(),
                edges: vec![(0, 1)],
            }],
            censuses: vec![],
        }
    }

    fn state(spec: &ModelSpec) -> SimState {
        let mut st = SimState::empty(spec, 99);
        st.seed_compartment(spec, 0, 1_000);
        st.seed_compartment(spec, 1, 10);
        st.day = 14;
        st.time = 14.0;
        st.rng.next();
        st
    }

    #[test]
    fn capture_restore_round_trip() {
        let sp = spec();
        let st = state(&sp);
        let ck = SimCheckpoint::capture(&sp, &st);
        let restored = ck.restore(&sp).unwrap();
        assert_eq!(restored, st);
    }

    #[test]
    fn binary_round_trip() {
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        let bytes = ck.to_bytes();
        assert_eq!(bytes.len(), ck.encoded_len());
        let back = SimCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn json_round_trip() {
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        let json = serde_json::to_string(&ck).unwrap();
        let back: SimCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn restore_allows_new_parameters_same_layout() {
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        let mut sp2 = spec();
        sp2.transmission_rate = 0.9; // parameter change: allowed
        sp2.progressions[0].mean_dwell = 3.0; // also a parameter
        assert!(ck.restore(&sp2).is_ok());
    }

    #[test]
    fn restore_rejects_layout_change() {
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        let mut sp2 = spec();
        sp2.compartments[1].stages = 3; // layout change: rejected
        assert!(ck.restore(&sp2).is_err());
        let mut sp3 = spec();
        sp3.compartments[1].name = "J".into();
        assert!(ck.restore(&sp3).is_err());
    }

    #[test]
    fn restore_with_seed_changes_future_not_state() {
        let sp = spec();
        let st = state(&sp);
        let ck = SimCheckpoint::capture(&sp, &st);
        let a = ck.restore_with_seed(&sp, 1).unwrap();
        let b = ck.restore_with_seed(&sp, 2).unwrap();
        assert_eq!(a.stage_counts, b.stage_counts);
        assert_eq!(a.day, b.day);
        assert_ne!(a.rng, b.rng);
    }

    #[test]
    fn clone_advances_deep_clone_counter() {
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        // Other tests in this binary may clone concurrently, so assert a
        // lower bound on the delta rather than an exact value.
        let before = deep_clone_count();
        let copy = ck.clone();
        assert_eq!(copy, ck);
        assert!(deep_clone_count() > before);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(SimCheckpoint::from_bytes(&[]).is_err());
        assert!(SimCheckpoint::from_bytes(&[0u8; 40]).is_err());
        let sp = spec();
        let ck = SimCheckpoint::capture(&sp, &state(&sp));
        let bytes = ck.to_bytes();
        assert!(SimCheckpoint::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }
}
