//! Reusable simulation arenas for high-volume ensemble runs.
//!
//! The parallel inference grid in `epismc` simulates tens of thousands of
//! short trajectories per calibration window. Building a fresh
//! [`Simulation`](crate::runner::Simulation) per cell allocates a state
//! vector, a step scratch, and a day buffer every time; a [`SimWorkspace`]
//! owns those buffers once per worker thread and rehydrates them in place
//! for each run, so the steady-state cost of a replicate is the simulated
//! days themselves — **zero heap allocations per simulated day** (the
//! recorded [`DailySeries`] and the returned checkpoint are the run's
//! output and are necessarily fresh).
//!
//! The workspace is pure reuse: running a trajectory through a warm
//! workspace is bit-identical to running it through [`Simulation`], which
//! is what lets the parallel runner pool workspaces per worker without
//! perturbing the deterministic replay guarantees.

use std::sync::Arc;
use std::time::Instant;

use epistats::rng::Xoshiro256PlusPlus;

use crate::checkpoint::SimCheckpoint;
use crate::engine::{CompiledSpec, StepScratch, Stepper};
use crate::error::SimError;
use crate::output::DailySeries;
use crate::state::SimState;

/// A reusable simulation arena: state buffer + stepper scratch + day
/// buffer, plus reuse telemetry counters.
#[derive(Clone, Debug)]
pub struct SimWorkspace {
    /// In-place rehydrated run state (allocation reused across runs).
    state: SimState,
    /// Stepper scratch (hazard tables, sampler setups, delta buffers).
    scratch: StepScratch,
    /// Per-day flow + census row buffer.
    day_buf: Vec<u64>,
    /// Single-slot compiled-model cache: `(salt, key, compiled)`. See
    /// [`Self::compiled_for`].
    compiled_cache: Option<(u64, Box<[u64]>, Arc<CompiledSpec>)>,
    /// Cache-miss count for [`Self::compiled_for`] (compilations done).
    compiled_builds: u64,
    /// Cache-hit count for [`Self::compiled_for`].
    compiled_reuses: u64,
    /// Completed runs through this workspace.
    runs: u64,
    /// Total days simulated through this workspace.
    days_simulated: u64,
    /// Wall-clock nanoseconds spent inside day-advance loops.
    sim_nanos: u64,
}

impl Default for SimWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SimWorkspace {
    /// Create an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            state: SimState {
                day: 0,
                time: 0.0,
                stage_counts: Vec::new(),
                rng: Xoshiro256PlusPlus::new(0),
            },
            scratch: StepScratch::new(),
            day_buf: Vec::new(),
            compiled_cache: None,
            compiled_builds: 0,
            compiled_reuses: 0,
            runs: 0,
            days_simulated: 0,
            sim_nanos: 0,
        }
    }

    /// Return the compiled model cached under `(salt, key)`, building
    /// (and caching) it with `build` on a miss.
    ///
    /// The inference grid walks cells in `(parameter, replicate)` order,
    /// so consecutive runs through one worker's workspace usually share a
    /// parameter vector. Compiling a fresh [`CompiledSpec`] per cell not
    /// only repeats the spec build/validation, it also mints a fresh
    /// [`CompiledSpec::stamp`] each time, which invalidates the scratch's
    /// stamp-keyed hazard table on every run. This single-slot cache keeps
    /// one compilation alive per `(salt, key)` so replicate runs reuse
    /// both the compilation and the derived tables.
    ///
    /// `salt` must identify the builder (so two simulators sharing a
    /// workspace can never alias) and `key` the exact parameterization
    /// (e.g. raw `f64::to_bits` of each calibration coordinate — exact
    /// equality, no float tolerance). The cache is pure memoization:
    /// `build` must be deterministic in `(salt, key)`, and results are
    /// bit-identical whether the slot hits or misses.
    ///
    /// # Errors
    /// Propagates `build` failures; the slot is left unchanged on error.
    pub fn compiled_for<E>(
        &mut self,
        salt: u64,
        key: &[u64],
        build: impl FnOnce() -> Result<CompiledSpec, E>,
    ) -> Result<Arc<CompiledSpec>, E> {
        if let Some((s, k, compiled)) = &self.compiled_cache {
            if *s == salt && k.as_ref() == key {
                self.compiled_reuses += 1;
                return Ok(Arc::clone(compiled));
            }
        }
        let compiled = Arc::new(build()?);
        self.compiled_builds += 1;
        self.compiled_cache = Some((salt, key.into(), Arc::clone(&compiled)));
        Ok(compiled)
    }

    /// Run a fresh trajectory from `init` until the clock reaches
    /// `end_day`, recording daily flows and censuses. Returns the
    /// recorded series and an end-of-run checkpoint.
    ///
    /// # Errors
    /// Returns [`SimError::Spec`] if `init` does not match the model's
    /// stage layout.
    pub fn run<S: Stepper>(
        &mut self,
        model: &CompiledSpec,
        stepper: &S,
        init: &SimState,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SimError> {
        if init.stage_counts.len() != model.spec.total_stages() {
            return Err(SimError::Spec(
                "initial state does not match model layout".into(),
            ));
        }
        self.state.assign_from(init);
        Ok(self.run_loop(model, stepper, end_day))
    }

    /// Resume a trajectory from a checkpoint with a fresh RNG seed (the
    /// paper's trajectory-branching restart), running until `end_day`.
    ///
    /// The reseed fully replaces the workspace RNG state, so the run
    /// depends only on `(ck, seed, end_day)` — never on what the
    /// workspace simulated before. This is the contract the inference
    /// grid's counter-based streams rely on: each cell's seed derives in
    /// O(1) from `(master seed, window, param, replicate)` (see
    /// `epistats::rng::StreamKey`) and cells may be claimed by any
    /// worker in any order with bit-identical trajectories.
    ///
    /// # Errors
    /// Propagates checkpoint layout errors.
    pub fn run_from_checkpoint<S: Stepper>(
        &mut self,
        model: &CompiledSpec,
        stepper: &S,
        ck: &SimCheckpoint,
        seed: u64,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SimError> {
        ck.restore_into_with_seed(&model.spec, &mut self.state, seed)?;
        Ok(self.run_loop(model, stepper, end_day))
    }

    /// Shared day-advance loop over the workspace buffers.
    fn run_loop<S: Stepper>(
        &mut self,
        model: &CompiledSpec,
        stepper: &S,
        end_day: u32,
    ) -> (DailySeries, SimCheckpoint) {
        // Row i of the series covers day `state.day + 1 + i`, matching
        // `Simulation`'s convention.
        let mut series = DailySeries::with_day_capacity(
            model.spec.output_names(),
            self.state.day + 1,
            end_day.saturating_sub(self.state.day) as usize,
        );
        let n_flows = model.spec.flows.len();
        // epilint: allow(wall-clock) — telemetry only; never feeds results
        let started = Instant::now();
        while self.state.day < end_day {
            self.day_buf.clear();
            self.day_buf.resize(n_flows, 0);
            stepper.advance_day(model, &mut self.state, &mut self.day_buf, &mut self.scratch);
            model.censuses_into(&self.state, &mut self.day_buf);
            series.push_day(&self.day_buf);
            self.days_simulated += 1;
        }
        self.sim_nanos += started.elapsed().as_nanos() as u64;
        self.runs += 1;
        let ck = SimCheckpoint::capture(&model.spec, &self.state);
        (series, ck)
    }

    /// Completed runs through this workspace (reuse count is
    /// `runs().saturating_sub(1)`).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total simulated days across all runs.
    pub fn days_simulated(&self) -> u64 {
        self.days_simulated
    }

    /// Wall-clock nanoseconds spent inside day-advance loops (telemetry;
    /// inherently nondeterministic).
    pub fn sim_nanos(&self) -> u64 {
        self.sim_nanos
    }

    /// Draws issued through the steppers' batched sampling entry points
    /// across all runs (telemetry; exact for a given run sequence).
    pub fn batched_draws(&self) -> u64 {
        self.scratch.batched_draws()
    }

    /// Compilations performed by [`Self::compiled_for`] (cache misses).
    pub fn compiled_builds(&self) -> u64 {
        self.compiled_builds
    }

    /// Cache hits served by [`Self::compiled_for`].
    pub fn compiled_reuses(&self) -> u64 {
        self.compiled_reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BinomialChainStepper, GillespieStepper};
    use crate::runner::Simulation;
    use crate::seir::{SeirModel, SeirParams};

    fn model() -> (CompiledSpec, SimState) {
        let m = SeirModel::new(SeirParams {
            population: 5_000,
            initial_exposed: 25,
            ..SeirParams::default()
        })
        .unwrap();
        let spec = m.spec();
        let state = m.initial_state(9);
        (CompiledSpec::new(spec).unwrap(), state)
    }

    #[test]
    fn warm_workspace_matches_fresh_simulation() {
        let (model, init) = model();
        let stepper = BinomialChainStepper::daily();

        let mut sim = Simulation::new(model.spec.clone(), stepper.clone(), init.clone()).unwrap();
        sim.run_until(40);

        let mut ws = SimWorkspace::new();
        // Warm the workspace on an unrelated run first.
        ws.run(&model, &stepper, &init, 13).unwrap();
        let (series, ck) = ws.run(&model, &stepper, &init, 40).unwrap();

        assert_eq!(&series, sim.series());
        assert_eq!(ck, sim.checkpoint());
        assert_eq!(ws.runs(), 2);
        assert_eq!(ws.days_simulated(), 53);
    }

    #[test]
    fn checkpoint_branching_matches_simulation_resume() {
        let (model, init) = model();
        let stepper = BinomialChainStepper::with_substeps(2);
        let mut ws = SimWorkspace::new();
        let (_, ck) = ws.run(&model, &stepper, &init, 20).unwrap();

        let mut sim =
            Simulation::resume_with_seed(model.spec.clone(), stepper.clone(), &ck, 77).unwrap();
        sim.run_until(45);

        let (series, end_ck) = ws
            .run_from_checkpoint(&model, &stepper, &ck, 77, 45)
            .unwrap();
        assert_eq!(&series, sim.series());
        assert_eq!(end_ck, sim.checkpoint());
        assert_eq!(series.start_day(), 21);
    }

    #[test]
    fn workspace_serves_multiple_steppers() {
        let (model, init) = model();
        let mut ws = SimWorkspace::new();
        let chain = BinomialChainStepper::daily();
        let exact = GillespieStepper::new();
        let (a, _) = ws.run(&model, &chain, &init, 10).unwrap();
        let (b, _) = ws.run(&model, &exact, &init, 10).unwrap();
        let (a2, _) = ws.run(&model, &chain, &init, 10).unwrap();
        assert_eq!(a, a2);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn compiled_cache_hits_on_matching_key_only() {
        let mut ws = SimWorkspace::new();
        let build = || CompiledSpec::new(SeirModel::new(SeirParams::default()).unwrap().spec());
        let a = ws.compiled_for(1, &[10, 20], build).unwrap();
        let b = ws.compiled_for(1, &[10, 20], build).unwrap();
        // Hit: the exact same compilation (and thus the same stamp).
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((ws.compiled_builds(), ws.compiled_reuses()), (1, 1));
        // Different key or salt: rebuilds (single-slot, last one wins).
        let c = ws.compiled_for(1, &[10, 21], build).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let d = ws.compiled_for(2, &[10, 21], build).unwrap();
        assert!(!Arc::ptr_eq(&c, &d));
        assert_eq!((ws.compiled_builds(), ws.compiled_reuses()), (3, 1));
        // Build errors propagate and leave the slot usable.
        assert!(ws
            .compiled_for(2, &[99], || Err::<CompiledSpec, SimError>(SimError::Spec(
                "no".into()
            )))
            .is_err());
        let e = ws.compiled_for(2, &[10, 21], build).unwrap();
        assert!(Arc::ptr_eq(&d, &e));
    }

    #[test]
    fn counter_derived_reseeds_are_order_independent() {
        use epistats::rng::StreamKey;
        let (model, init) = model();
        let stepper = BinomialChainStepper::daily();
        let mut ws = SimWorkspace::new();
        let (_, ck) = ws.run(&model, &stepper, &init, 15).unwrap();
        // Per-replicate seeds derive in O(1) from a shared counter key,
        // exactly as the inference grid derives them.
        let key = StreamKey::new(42).absorb(0x5EED);
        let run_cell = |ws: &mut SimWorkspace, r: u64| {
            ws.run_from_checkpoint(&model, &stepper, &ck, key.derive(r), 40)
                .unwrap()
        };
        let forward: Vec<_> = (0..6u64).map(|r| run_cell(&mut ws, r)).collect();
        // A differently warmed workspace visiting the cells in reverse
        // order reproduces every trajectory bit for bit: the reseed
        // carries no sequential state between cells.
        let mut ws2 = SimWorkspace::new();
        ws2.run(&model, &stepper, &init, 3).unwrap();
        let mut reverse: Vec<_> = (0..6u64).rev().map(|r| run_cell(&mut ws2, r)).collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
        // Distinct counters branch into distinct trajectories.
        assert!(forward.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn layout_mismatch_rejected() {
        let (model, _) = model();
        let mut ws = SimWorkspace::new();
        let bad = SimState {
            day: 0,
            time: 0.0,
            stage_counts: vec![0; 3],
            rng: Xoshiro256PlusPlus::new(1),
        };
        assert!(ws
            .run(&model, &BinomialChainStepper::daily(), &bad, 5)
            .is_err());
    }
}
