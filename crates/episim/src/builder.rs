//! Fluent construction of custom [`ModelSpec`]s.
//!
//! The raw spec is index-based (compartment ids are positions), which is
//! error-prone to write by hand. [`ModelSpecBuilder`] lets custom models
//! be declared by *name*, with validation at build time:
//!
//! ```
//! use episim::builder::ModelSpecBuilder;
//!
//! let spec = ModelSpecBuilder::new("sir")
//!     .compartment("S", 1, 0.0)
//!     .compartment("I", 2, 1.0)
//!     .compartment("R", 1, 0.0)
//!     .progression("I", 5.0, &[("R", 1.0)])
//!     .infection("S", "I")
//!     .transmission_rate(0.4)
//!     .flow("infections", &[("S", "I")])
//!     .census("prevalence", &["I"])
//!     .build()
//!     .unwrap();
//! assert_eq!(spec.compartments.len(), 3);
//! ```

use crate::error::SimError;
use crate::spec::{CensusSpec, Compartment, FlowSpec, Infection, ModelSpec, Progression};

/// Pending progression: `(from, mean_dwell, [(to, probability)])`.
type ProgressionEntry = (String, f64, Vec<(String, f64)>);
/// Pending infection:
/// `(susceptible, infectious, relative_rate, optional exposure branches)`.
type InfectionEntry = (String, String, f64, Option<Vec<(String, f64)>>);

/// Name-based builder for [`ModelSpec`].
#[derive(Clone, Debug)]
pub struct ModelSpecBuilder {
    name: String,
    compartments: Vec<Compartment>,
    progressions: Vec<ProgressionEntry>,
    infections: Vec<InfectionEntry>,
    transmission_rate: f64,
    flows: Vec<(String, Vec<(String, String)>)>,
    censuses: Vec<(String, Vec<String>)>,
}

impl ModelSpecBuilder {
    /// Start a builder for a model with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            compartments: Vec::new(),
            progressions: Vec::new(),
            infections: Vec::new(),
            transmission_rate: 0.0,
            flows: Vec::new(),
            censuses: Vec::new(),
        }
    }

    /// Add a compartment with `stages` Erlang stages and an infectivity
    /// weight.
    pub fn compartment(mut self, name: &str, stages: u32, infectivity: f64) -> Self {
        self.compartments
            .push(Compartment::new(name, stages, infectivity));
        self
    }

    /// Add a dwell-driven progression: out of `from` after a mean of
    /// `mean_dwell` days, branching to the named targets with the given
    /// probabilities.
    pub fn progression(mut self, from: &str, mean_dwell: f64, branches: &[(&str, f64)]) -> Self {
        self.progressions.push((
            from.to_string(),
            mean_dwell,
            branches.iter().map(|&(n, p)| (n.to_string(), p)).collect(),
        ));
        self
    }

    /// Add a homogeneous-mixing infection.
    pub fn infection(mut self, susceptible: &str, exposed: &str) -> Self {
        self.infections
            .push((susceptible.to_string(), exposed.to_string(), 1.0, None));
        self
    }

    /// Add a structured-mixing infection with a susceptibility multiplier
    /// and explicit weighted sources.
    pub fn infection_weighted(
        mut self,
        susceptible: &str,
        exposed: &str,
        susceptibility: f64,
        sources: &[(&str, f64)],
    ) -> Self {
        self.infections.push((
            susceptible.to_string(),
            exposed.to_string(),
            susceptibility,
            Some(sources.iter().map(|&(n, w)| (n.to_string(), w)).collect()),
        ));
        self
    }

    /// Set the global transmission rate.
    pub fn transmission_rate(mut self, rate: f64) -> Self {
        self.transmission_rate = rate;
        self
    }

    /// Record a daily flow counter over the named edges.
    pub fn flow(mut self, name: &str, edges: &[(&str, &str)]) -> Self {
        self.flows.push((
            name.to_string(),
            edges
                .iter()
                .map(|&(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        ));
        self
    }

    /// Record an end-of-day census over the named compartments.
    pub fn census(mut self, name: &str, compartments: &[&str]) -> Self {
        self.censuses.push((
            name.to_string(),
            compartments.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Resolve names to indices and validate.
    ///
    /// # Errors
    /// Returns [`SimError::Spec`] for unknown names plus everything
    /// [`ModelSpec::validate`] checks.
    pub fn build(self) -> Result<ModelSpec, SimError> {
        let spec = self.resolve().map_err(SimError::Spec)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Resolve compartment names to indices.
    fn resolve(self) -> Result<ModelSpec, String> {
        let id_of = |name: &str| -> Result<usize, String> {
            self.compartments
                .iter()
                .position(|c| c.name == name)
                .ok_or_else(|| format!("unknown compartment '{name}'"))
        };
        let progressions: Vec<Progression> = self
            .progressions
            .iter()
            .map(|(from, dwell, branches)| {
                Ok(Progression {
                    from: id_of(from)?,
                    mean_dwell: *dwell,
                    branches: branches
                        .iter()
                        .map(|(n, p)| Ok((id_of(n)?, *p)))
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;
        let infections: Vec<Infection> = self
            .infections
            .iter()
            .map(|(s, e, susc, sources)| {
                Ok(Infection {
                    susceptible: id_of(s)?,
                    exposed: id_of(e)?,
                    susceptibility: *susc,
                    sources: match sources {
                        None => None,
                        Some(list) => Some(
                            list.iter()
                                .map(|(n, w)| Ok((id_of(n)?, *w)))
                                .collect::<Result<_, String>>()?,
                        ),
                    },
                })
            })
            .collect::<Result<_, String>>()?;
        let flows: Vec<FlowSpec> = self
            .flows
            .iter()
            .map(|(name, edges)| {
                Ok(FlowSpec {
                    name: name.clone(),
                    edges: edges
                        .iter()
                        .map(|(a, b)| Ok((id_of(a)?, id_of(b)?)))
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;
        let censuses: Vec<CensusSpec> = self
            .censuses
            .iter()
            .map(|(name, comps)| {
                Ok(CensusSpec {
                    name: name.clone(),
                    compartments: comps
                        .iter()
                        .map(|n| id_of(n))
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(ModelSpec {
            name: self.name,
            compartments: self.compartments,
            progressions,
            infections,
            transmission_rate: self.transmission_rate,
            flows,
            censuses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BinomialChainStepper;
    use crate::runner::Simulation;
    use crate::state::SimState;

    fn sir() -> ModelSpecBuilder {
        ModelSpecBuilder::new("sir")
            .compartment("S", 1, 0.0)
            .compartment("I", 2, 1.0)
            .compartment("R", 1, 0.0)
            .progression("I", 5.0, &[("R", 1.0)])
            .infection("S", "I")
            .transmission_rate(0.5)
            .flow("infections", &[("S", "I")])
            .census("prevalence", &["I"])
    }

    #[test]
    fn builds_runnable_model() {
        let spec = sir().build().unwrap();
        let mut st = SimState::empty(&spec, 1);
        st.seed_compartment(&spec, 0, 5_000);
        st.seed_compartment(&spec, 1, 50);
        let mut sim = Simulation::new(spec, BinomialChainStepper::daily(), st).unwrap();
        sim.run_until(60);
        assert_eq!(sim.state().total_population(), 5_050);
        let inf: u64 = sim.series().series("infections").unwrap().iter().sum();
        assert!(inf > 500);
    }

    #[test]
    fn unknown_names_are_reported() {
        let err = sir()
            .progression("X", 2.0, &[("R", 1.0)])
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown compartment 'X'"), "{err}");
        let err = sir()
            .flow("bad", &[("S", "Z")])
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("'Z'"), "{err}");
        let err = sir().census("bad", &["Q"]).build().unwrap_err().to_string();
        assert!(err.contains("'Q'"), "{err}");
        let err = sir()
            .infection("S", "Nope")
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("'Nope'"), "{err}");
    }

    #[test]
    fn weighted_infection_resolves_sources() {
        let spec = ModelSpecBuilder::new("two-group")
            .compartment("S_a", 1, 0.0)
            .compartment("I_a", 1, 1.0)
            .compartment("S_b", 1, 0.0)
            .compartment("I_b", 1, 1.0)
            .compartment("R", 1, 0.0)
            .progression("I_a", 4.0, &[("R", 1.0)])
            .progression("I_b", 4.0, &[("R", 1.0)])
            .infection_weighted("S_a", "I_a", 0.8, &[("I_a", 1.5), ("I_b", 0.5)])
            .infection_weighted("S_b", "I_b", 1.0, &[("I_a", 0.5), ("I_b", 1.0)])
            .transmission_rate(0.4)
            .flow("infections", &[("S_a", "I_a"), ("S_b", "I_b")])
            .build()
            .unwrap();
        assert_eq!(spec.infections.len(), 2);
        let inf = &spec.infections[0];
        assert_eq!(inf.susceptibility, 0.8);
        assert_eq!(inf.sources.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn validation_failures_propagate() {
        // Branch probabilities not summing to one.
        let err = ModelSpecBuilder::new("bad")
            .compartment("A", 1, 0.0)
            .compartment("B", 1, 0.0)
            .progression("A", 1.0, &[("B", 0.5)])
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("sum to"), "{err}");
    }
}
