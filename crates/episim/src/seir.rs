//! Minimal stochastic SEIR model.
//!
//! A four-compartment baseline used for stepper fidelity studies (where
//! the exact Gillespie run is affordable), quick examples, and tests. It
//! exercises the same engine as the full COVID model.

use serde::{Deserialize, Serialize};

use crate::spec::{CensusSpec, Compartment, FlowSpec, Infection, ModelSpec, Progression};
use crate::state::SimState;

/// Parameters of the minimal SEIR model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeirParams {
    /// Transmission rate.
    pub transmission_rate: f64,
    /// Mean latent period (days).
    pub latent_period: f64,
    /// Mean infectious period (days).
    pub infectious_period: f64,
    /// Total population.
    pub population: u64,
    /// Initially exposed individuals.
    pub initial_exposed: u64,
    /// Erlang stages for E and I.
    pub stages: u32,
}

impl Default for SeirParams {
    fn default() -> Self {
        Self {
            transmission_rate: 0.4,
            latent_period: 3.0,
            infectious_period: 5.0,
            population: 100_000,
            initial_exposed: 50,
            stages: 2,
        }
    }
}

impl SeirParams {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.transmission_rate.is_finite() && self.transmission_rate >= 0.0) {
            return Err(format!("transmission_rate = {}", self.transmission_rate));
        }
        if !(self.latent_period > 0.0 && self.infectious_period > 0.0) {
            return Err("periods must be positive".into());
        }
        if self.initial_exposed > self.population {
            return Err("initial_exposed exceeds population".into());
        }
        if self.stages == 0 {
            return Err("stages must be >= 1".into());
        }
        Ok(())
    }

    /// Basic reproduction number `theta * infectious_period`.
    pub fn r0(&self) -> f64 {
        self.transmission_rate * self.infectious_period
    }
}

/// The minimal SEIR model.
#[derive(Clone, Debug)]
pub struct SeirModel {
    params: SeirParams,
}

impl SeirModel {
    /// Create a model from validated parameters.
    ///
    /// # Errors
    /// Propagates [`SeirParams::validate`] failures.
    pub fn new(params: SeirParams) -> Result<Self, String> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &SeirParams {
        &self.params
    }

    /// Build the model spec.
    pub fn spec(&self) -> ModelSpec {
        let p = &self.params;
        ModelSpec {
            name: "seir".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("E", p.stages, 0.0),
                Compartment::new("I", p.stages, 1.0),
                Compartment::simple("R"),
            ],
            progressions: vec![
                Progression {
                    from: 1,
                    mean_dwell: p.latent_period,
                    branches: vec![(2, 1.0)],
                },
                Progression {
                    from: 2,
                    mean_dwell: p.infectious_period,
                    branches: vec![(3, 1.0)],
                },
            ],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: p.transmission_rate,
            flows: vec![
                FlowSpec {
                    name: "infections".into(),
                    edges: vec![(0, 1)],
                },
                FlowSpec {
                    name: "recoveries".into(),
                    edges: vec![(2, 3)],
                },
            ],
            censuses: vec![CensusSpec {
                name: "infectious".into(),
                compartments: vec![2],
            }],
        }
    }

    /// Initial state: `population - initial_exposed` susceptible,
    /// `initial_exposed` in E.
    pub fn initial_state(&self, seed: u64) -> SimState {
        self.initial_state_in(&self.spec(), seed)
    }

    /// [`Self::initial_state`] against an already-built spec for this
    /// model (e.g. out of a cached [`crate::engine::CompiledSpec`]),
    /// skipping the per-call spec rebuild.
    pub fn initial_state_in(&self, spec: &ModelSpec, seed: u64) -> SimState {
        let mut st = SimState::empty(spec, seed);
        st.seed_compartment(
            spec,
            0,
            self.params.population - self.params.initial_exposed,
        );
        st.seed_compartment(spec, 1, self.params.initial_exposed);
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BinomialChainStepper, GillespieStepper};
    use crate::runner::Simulation;

    #[test]
    fn default_builds_valid_spec() {
        let m = SeirModel::new(SeirParams::default()).unwrap();
        assert!(m.spec().validate().is_ok());
        assert!((m.params().r0() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn epidemic_final_size_near_r0_prediction() {
        // For R0 = 2, the final-size equation z = 1 - exp(-R0 z) gives
        // z ~ 0.797. The chain-binomial daily scheme has slight
        // discretization bias, so allow a generous band.
        let m = SeirModel::new(SeirParams::default()).unwrap();
        let mut attack = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let mut sim = Simulation::new(
                m.spec(),
                BinomialChainStepper::with_substeps(4),
                m.initial_state(seed),
            )
            .unwrap();
            sim.run_until(400);
            attack += sim.state().compartment_count(sim.spec(), 3) as f64 / 100_000.0;
        }
        attack /= reps as f64;
        assert!(
            (attack - 0.797).abs() < 0.05,
            "attack rate {attack} far from final-size prediction 0.797"
        );
    }

    #[test]
    fn gillespie_small_population_runs() {
        let m = SeirModel::new(SeirParams {
            population: 500,
            initial_exposed: 5,
            ..SeirParams::default()
        })
        .unwrap();
        let mut sim =
            Simulation::new(m.spec(), GillespieStepper::new(), m.initial_state(3)).unwrap();
        sim.run_until(100);
        assert_eq!(sim.state().total_population(), 500);
    }

    #[test]
    fn rejects_invalid() {
        assert!(SeirModel::new(SeirParams {
            transmission_rate: -0.1,
            ..SeirParams::default()
        })
        .is_err());
        assert!(SeirModel::new(SeirParams {
            stages: 0,
            ..SeirParams::default()
        })
        .is_err());
    }
}
