//! A keyed store of time-stamped checkpoints.
//!
//! The paper's introduction: "we are able to store, or checkpoint, the
//! exact state of the model, allowing models to be restarted from
//! time-stamped stored states rather than restarting them from the
//! beginning of an epidemic." This module is that operational piece: an
//! in-memory map from `(run label, day)` to encoded checkpoints, with
//! optional directory persistence (one compact binary file per entry),
//! nearest-predecessor lookup, and pruning.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::checkpoint::SimCheckpoint;
use crate::error::SimError;

/// Key of a stored checkpoint: which run it belongs to and its day stamp.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CheckpointKey {
    /// Run/trajectory label (e.g. a particle id or scenario name).
    pub run: String,
    /// Simulation day of the capture.
    pub day: u32,
}

/// In-memory checkpoint store with optional directory persistence.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    entries: BTreeMap<CheckpointKey, bytes::Bytes>,
}

impl CheckpointStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store a checkpoint under `(run, day)`, replacing any previous
    /// entry with the same key.
    pub fn insert(&mut self, run: &str, day: u32, checkpoint: &SimCheckpoint) {
        self.entries.insert(
            CheckpointKey {
                run: run.to_string(),
                day,
            },
            checkpoint.to_bytes(),
        );
    }

    /// Fetch and decode the checkpoint at exactly `(run, day)`.
    ///
    /// # Errors
    /// Returns an error if the stored bytes fail to decode (corruption).
    pub fn get(&self, run: &str, day: u32) -> Result<Option<SimCheckpoint>, SimError> {
        match self.entries.get(&CheckpointKey {
            run: run.to_string(),
            day,
        }) {
            None => Ok(None),
            Some(b) => SimCheckpoint::from_bytes(b).map(Some),
        }
    }

    /// The latest checkpoint of `run` at or before `day` — the natural
    /// restart point when new data arrive mid-window.
    ///
    /// # Errors
    /// Returns an error on decode failure.
    pub fn latest_at_or_before(
        &self,
        run: &str,
        day: u32,
    ) -> Result<Option<(u32, SimCheckpoint)>, SimError> {
        let lo = CheckpointKey {
            run: run.to_string(),
            day: 0,
        };
        let hi = CheckpointKey {
            run: run.to_string(),
            day,
        };
        match self.entries.range(lo..=hi).next_back() {
            None => Ok(None),
            Some((k, b)) => Ok(Some((k.day, SimCheckpoint::from_bytes(b)?))),
        }
    }

    /// All stamped days for a run, ascending.
    pub fn days(&self, run: &str) -> Vec<u32> {
        let lo = CheckpointKey {
            run: run.to_string(),
            day: 0,
        };
        let hi = CheckpointKey {
            run: run.to_string(),
            day: u32::MAX,
        };
        self.entries.range(lo..=hi).map(|(k, _)| k.day).collect()
    }

    /// Distinct run labels in the store.
    pub fn runs(&self) -> Vec<String> {
        let mut out: Vec<String> = self.entries.keys().map(|k| k.run.clone()).collect();
        out.dedup();
        out
    }

    /// Drop all checkpoints stamped strictly before `day` (bounding the
    /// memory of a long-running operational deployment). Returns the
    /// number removed.
    pub fn prune_before(&mut self, day: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.day >= day);
        before - self.entries.len()
    }

    /// Total encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.entries.values().map(bytes::Bytes::len).sum()
    }

    /// Persist every entry into `dir` (created if missing), one
    /// `<run>@<day>.ckpt` file each.
    ///
    /// # Errors
    /// Propagates IO errors.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (k, bytes) in &self.entries {
            std::fs::write(Self::file_name(dir, &k.run, k.day), bytes)?;
        }
        Ok(())
    }

    /// Load every `*.ckpt` file from `dir` into a new store.
    ///
    /// # Errors
    /// Returns [`SimError::Io`] for filesystem and file-name problems and
    /// [`SimError::Checkpoint`] for undecodable contents.
    pub fn load_from_dir(dir: &Path) -> Result<Self, SimError> {
        let mut store = Self::new();
        let rd =
            std::fs::read_dir(dir).map_err(|e| SimError::Io(format!("read_dir {dir:?}: {e}")))?;
        for entry in rd {
            let entry = entry.map_err(|e| SimError::Io(e.to_string()))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| SimError::Io(format!("bad file name {path:?}")))?;
            let (run, day) = stem
                .rsplit_once('@')
                .ok_or_else(|| SimError::Io(format!("file name '{stem}' missing '@day'")))?;
            let day: u32 = day
                .parse()
                .map_err(|e| SimError::Io(format!("file '{stem}': bad day: {e}")))?;
            let bytes =
                std::fs::read(&path).map_err(|e| SimError::Io(format!("read {path:?}: {e}")))?;
            // Validate eagerly so corruption surfaces at load, not use.
            SimCheckpoint::from_bytes(&bytes)?;
            store.entries.insert(
                CheckpointKey {
                    run: run.to_string(),
                    day,
                },
                bytes.into(),
            );
        }
        Ok(store)
    }

    fn file_name(dir: &Path, run: &str, day: u32) -> PathBuf {
        dir.join(format!("{run}@{day}.ckpt"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covid::{CovidModel, CovidParams};
    use crate::engine::BinomialChainStepper;
    use crate::runner::Simulation;

    fn sample_checkpoints() -> Vec<(u32, SimCheckpoint)> {
        let model = CovidModel::new(CovidParams {
            population: 10_000,
            initial_exposed: 40,
            ..CovidParams::default()
        })
        .unwrap();
        let mut sim = Simulation::new(
            model.spec(),
            BinomialChainStepper::daily(),
            model.initial_state(1),
        )
        .unwrap();
        let mut out = Vec::new();
        for day in [10u32, 20, 30, 40] {
            sim.run_until(day);
            out.push((day, sim.checkpoint()));
        }
        out
    }

    #[test]
    fn insert_get_round_trip() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        for (day, ck) in &cks {
            store.insert("truth", *day, ck);
        }
        assert_eq!(store.len(), 4);
        let got = store.get("truth", 20).unwrap().unwrap();
        assert_eq!(got, cks[1].1);
        assert!(store.get("truth", 15).unwrap().is_none());
        assert!(store.get("other", 20).unwrap().is_none());
    }

    #[test]
    fn latest_at_or_before_picks_nearest_predecessor() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        for (day, ck) in &cks {
            store.insert("run", *day, ck);
        }
        let (day, ck) = store.latest_at_or_before("run", 35).unwrap().unwrap();
        assert_eq!(day, 30);
        assert_eq!(ck, cks[2].1);
        let (day, _) = store.latest_at_or_before("run", 40).unwrap().unwrap();
        assert_eq!(day, 40);
        assert!(store.latest_at_or_before("run", 5).unwrap().is_none());
    }

    #[test]
    fn runs_and_days_enumeration() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        store.insert("a", 10, &cks[0].1);
        store.insert("a", 20, &cks[1].1);
        store.insert("b", 30, &cks[2].1);
        assert_eq!(store.days("a"), vec![10, 20]);
        assert_eq!(store.days("b"), vec![30]);
        assert_eq!(store.runs(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn pruning_bounds_memory() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        for (day, ck) in &cks {
            store.insert("run", *day, ck);
        }
        let size_before = store.encoded_size();
        assert!(size_before > 0);
        let removed = store.prune_before(25);
        assert_eq!(removed, 2);
        assert_eq!(store.days("run"), vec![30, 40]);
        assert!(store.encoded_size() < size_before);
    }

    #[test]
    fn directory_persistence_round_trip() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        for (day, ck) in &cks {
            store.insert("truth", *day, ck);
        }
        store.insert("alt@run", 10, &cks[0].1); // '@' in run label still parses (rsplit)
        let dir = std::env::temp_dir().join("episim-store-test");
        std::fs::remove_dir_all(&dir).ok();
        store.save_to_dir(&dir).unwrap();
        let loaded = CheckpointStore::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(
            loaded.get("truth", 30).unwrap().unwrap(),
            store.get("truth", 30).unwrap().unwrap()
        );
        assert!(loaded.get("alt@run", 10).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let dir = std::env::temp_dir().join("episim-store-corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad@5.ckpt"), b"not a checkpoint").unwrap();
        assert!(CheckpointStore::load_from_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replace_same_key_keeps_latest() {
        let cks = sample_checkpoints();
        let mut store = CheckpointStore::new();
        store.insert("r", 10, &cks[0].1);
        store.insert("r", 10, &cks[3].1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("r", 10).unwrap().unwrap(), cks[3].1);
    }
}
