//! Declarative model specification shared by all steppers.
//!
//! A [`ModelSpec`] describes a stochastic compartmental model as data:
//! compartments with Erlang dwell stages and infectivity weights,
//! dwell-driven progressions with categorical branching, force-of-
//! infection transitions, and the output flows/censuses to record.
//! The three steppers in [`crate::engine`] interpret the same spec, so
//! model fidelity comparisons (binomial chain vs tau-leap vs Gillespie)
//! hold the model definition fixed.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Index of a compartment within a [`ModelSpec`].
pub type CompartmentId = usize;

/// A single compartment: a named pool of individuals with an Erlang
/// dwell-time structure and an infectivity weight.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Compartment {
    /// Human-readable name (unique within a spec).
    pub name: String,
    /// Number of Erlang stages; `1` gives an exponential dwell time,
    /// higher values concentrate the dwell around its mean.
    pub stages: u32,
    /// Weight of this compartment's occupants in the force of infection
    /// (0 for non-infectious compartments).
    pub infectivity: f64,
}

impl Compartment {
    /// A non-infectious compartment with a single stage.
    pub fn simple(name: &str) -> Self {
        Self {
            name: name.to_string(),
            stages: 1,
            infectivity: 0.0,
        }
    }

    /// A compartment with the given Erlang stage count and infectivity.
    pub fn new(name: &str, stages: u32, infectivity: f64) -> Self {
        Self {
            name: name.to_string(),
            stages,
            infectivity,
        }
    }
}

/// A dwell-time-driven transition out of a compartment.
///
/// An individual entering `from` stays for an Erlang-distributed time with
/// the given mean (shape = `from`'s stage count), then moves to one of the
/// `branches` targets with the associated probabilities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Progression {
    /// Source compartment.
    pub from: CompartmentId,
    /// Mean dwell time in days.
    pub mean_dwell: f64,
    /// `(target, probability)` pairs; probabilities must sum to 1.
    pub branches: Vec<(CompartmentId, f64)>,
}

/// A force-of-infection transition: occupants of `susceptible` become
/// `exposed` at per-capita rate
/// `transmission_rate * susceptibility * sum_c(w_c * infectivity_c * count_c) / N`.
///
/// With `sources == None` every compartment contributes with weight 1
/// (homogeneous mixing). Explicit `sources` express structured mixing —
/// e.g. a row of an age-contact matrix in the age-stratified model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Infection {
    /// The susceptible pool.
    pub susceptible: CompartmentId,
    /// Where newly infected individuals land.
    pub exposed: CompartmentId,
    /// Relative susceptibility multiplier of this pool (1 = baseline).
    pub susceptibility: f64,
    /// Optional weighted source compartments; `None` = homogeneous
    /// mixing over all compartments.
    pub sources: Option<Vec<(CompartmentId, f64)>>,
}

impl Infection {
    /// Homogeneous-mixing infection with baseline susceptibility.
    pub fn simple(susceptible: CompartmentId, exposed: CompartmentId) -> Self {
        Self {
            susceptible,
            exposed,
            susceptibility: 1.0,
            sources: None,
        }
    }

    /// Structured-mixing infection: explicit source weights (e.g. one
    /// row of a contact matrix) and a susceptibility multiplier.
    pub fn weighted(
        susceptible: CompartmentId,
        exposed: CompartmentId,
        susceptibility: f64,
        sources: Vec<(CompartmentId, f64)>,
    ) -> Self {
        Self {
            susceptible,
            exposed,
            susceptibility,
            sources: Some(sources),
        }
    }
}

/// A named flow counter: records the number of individuals crossing any
/// of the listed `(from, to)` edges each day.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Output series name (e.g. `"infections"`, `"deaths"`).
    pub name: String,
    /// Edges whose daily traversals are summed into this series.
    pub edges: Vec<(CompartmentId, CompartmentId)>,
}

/// A named census: records end-of-day occupancy summed over compartments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CensusSpec {
    /// Output series name (e.g. `"hospital_census"`).
    pub name: String,
    /// Compartments whose occupancies are summed.
    pub compartments: Vec<CompartmentId>,
}

/// A complete stochastic compartmental model definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (for diagnostics and serialized artifacts).
    pub name: String,
    /// The compartments, indexed by [`CompartmentId`].
    pub compartments: Vec<Compartment>,
    /// Dwell-driven transitions.
    pub progressions: Vec<Progression>,
    /// Force-of-infection transitions.
    pub infections: Vec<Infection>,
    /// Global transmission-rate multiplier (the paper's calibration
    /// parameter `theta`).
    pub transmission_rate: f64,
    /// Daily flow counters to record.
    pub flows: Vec<FlowSpec>,
    /// End-of-day censuses to record.
    pub censuses: Vec<CensusSpec>,
}

impl ModelSpec {
    /// Validate internal consistency; called by the builders of concrete
    /// models and by [`crate::Simulation::new`].
    ///
    /// # Errors
    /// Returns [`SimError::Spec`] describing the first problem found:
    /// out-of-range compartment ids, non-positive dwell times, branch
    /// probabilities that do not sum to 1, duplicate compartment names,
    /// duplicate progressions from one compartment, or a non-finite /
    /// negative transmission rate.
    pub fn validate(&self) -> Result<(), SimError> {
        self.validate_inner().map_err(SimError::Spec)
    }

    fn validate_inner(&self) -> Result<(), String> {
        let n = self.compartments.len();
        if n == 0 {
            return Err("model has no compartments".into());
        }
        let mut names = std::collections::BTreeSet::new();
        for c in &self.compartments {
            if !names.insert(c.name.as_str()) {
                return Err(format!("duplicate compartment name '{}'", c.name));
            }
            if c.stages == 0 {
                return Err(format!("compartment '{}' has zero stages", c.name));
            }
            if !c.infectivity.is_finite() || c.infectivity < 0.0 {
                return Err(format!(
                    "compartment '{}' has invalid infectivity {}",
                    c.name, c.infectivity
                ));
            }
        }
        let mut seen_from = std::collections::BTreeSet::new();
        for p in &self.progressions {
            if p.from >= n {
                return Err(format!("progression from unknown compartment {}", p.from));
            }
            if !seen_from.insert(p.from) {
                return Err(format!(
                    "multiple progressions from compartment '{}'",
                    self.compartments[p.from].name
                ));
            }
            if !(p.mean_dwell.is_finite() && p.mean_dwell > 0.0) {
                return Err(format!(
                    "progression from '{}' has invalid mean dwell {}",
                    self.compartments[p.from].name, p.mean_dwell
                ));
            }
            if p.branches.is_empty() {
                return Err(format!(
                    "progression from '{}' has no branches",
                    self.compartments[p.from].name
                ));
            }
            let mut total = 0.0;
            for &(t, prob) in &p.branches {
                if t >= n {
                    return Err(format!("branch to unknown compartment {t}"));
                }
                if !(prob.is_finite() && prob >= 0.0) {
                    return Err(format!("invalid branch probability {prob}"));
                }
                total += prob;
            }
            if (total - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "branch probabilities from '{}' sum to {total}, not 1",
                    self.compartments[p.from].name
                ));
            }
        }
        for inf in &self.infections {
            if inf.susceptible >= n || inf.exposed >= n {
                return Err("infection references unknown compartment".into());
            }
            if inf.susceptible == inf.exposed {
                return Err("infection with susceptible == exposed".into());
            }
            if !(inf.susceptibility.is_finite() && inf.susceptibility >= 0.0) {
                return Err(format!(
                    "infection has invalid susceptibility {}",
                    inf.susceptibility
                ));
            }
            if let Some(sources) = &inf.sources {
                for &(c, w) in sources {
                    if c >= n {
                        return Err("infection source references unknown compartment".into());
                    }
                    if !(w.is_finite() && w >= 0.0) {
                        return Err(format!("infection source has invalid weight {w}"));
                    }
                }
            }
        }
        if !(self.transmission_rate.is_finite() && self.transmission_rate >= 0.0) {
            return Err(format!(
                "invalid transmission rate {}",
                self.transmission_rate
            ));
        }
        for f in &self.flows {
            for &(a, b) in &f.edges {
                if a >= n || b >= n {
                    return Err(format!("flow '{}' references unknown compartment", f.name));
                }
            }
        }
        for c in &self.censuses {
            for &i in &c.compartments {
                if i >= n {
                    return Err(format!(
                        "census '{}' references unknown compartment",
                        c.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Look up a compartment id by name.
    pub fn compartment_id(&self, name: &str) -> Option<CompartmentId> {
        self.compartments.iter().position(|c| c.name == name)
    }

    /// Total number of Erlang stages across all compartments (the length
    /// of the flattened state vector).
    pub fn total_stages(&self) -> usize {
        self.compartments.iter().map(|c| c.stages as usize).sum()
    }

    /// Offset of each compartment's first stage in the flattened state
    /// vector; last entry is [`Self::total_stages`].
    pub fn stage_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.compartments.len() + 1);
        let mut acc = 0usize;
        for c in &self.compartments {
            offsets.push(acc);
            acc += c.stages as usize;
        }
        offsets.push(acc);
        offsets
    }

    /// The per-stage exit rate of a progression: Erlang shape over mean
    /// dwell, so the compartment-level dwell has the requested mean.
    pub fn stage_rate(&self, p: &Progression) -> f64 {
        self.compartments[p.from].stages as f64 / p.mean_dwell
    }

    /// Names of all output series in recording order (flows, then
    /// censuses).
    pub fn output_names(&self) -> Vec<String> {
        self.flows
            .iter()
            .map(|f| f.name.clone())
            .chain(self.censuses.iter().map(|c| c.name.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            name: "tiny".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("I", 2, 1.0),
                Compartment::simple("R"),
            ],
            progressions: vec![Progression {
                from: 1,
                mean_dwell: 5.0,
                branches: vec![(2, 1.0)],
            }],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: 0.3,
            flows: vec![FlowSpec {
                name: "infections".into(),
                edges: vec![(0, 1)],
            }],
            censuses: vec![CensusSpec {
                name: "infectious".into(),
                compartments: vec![1],
            }],
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn offsets_and_totals() {
        let s = tiny_spec();
        assert_eq!(s.total_stages(), 4);
        assert_eq!(s.stage_offsets(), vec![0, 1, 3, 4]);
        assert_eq!(s.compartment_id("I"), Some(1));
        assert_eq!(s.compartment_id("X"), None);
    }

    #[test]
    fn stage_rate_scales_with_shape() {
        let s = tiny_spec();
        let p = &s.progressions[0];
        assert!((s.stage_rate(p) - 2.0 / 5.0).abs() < 1e-14);
    }

    #[test]
    fn rejects_bad_branch_sum() {
        let mut s = tiny_spec();
        s.progressions[0].branches = vec![(2, 0.5), (0, 0.4)];
        assert!(s.validate().unwrap_err().to_string().contains("sum to"));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut s = tiny_spec();
        s.compartments[2].name = "S".into();
        assert!(s.validate().unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_duplicate_progression_source() {
        let mut s = tiny_spec();
        s.progressions.push(Progression {
            from: 1,
            mean_dwell: 2.0,
            branches: vec![(0, 1.0)],
        });
        assert!(s
            .validate()
            .unwrap_err()
            .to_string()
            .contains("multiple progressions"));
    }

    #[test]
    fn rejects_zero_stages_and_bad_rate() {
        let mut s = tiny_spec();
        s.compartments[1].stages = 0;
        assert!(s.validate().is_err());
        let mut s2 = tiny_spec();
        s2.transmission_rate = f64::NAN;
        assert!(s2.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_references() {
        let mut s = tiny_spec();
        s.flows[0].edges.push((0, 99));
        assert!(s.validate().is_err());
        let mut s2 = tiny_spec();
        s2.infections[0].exposed = 0;
        assert!(s2.validate().is_err());
    }

    #[test]
    fn output_names_order() {
        let s = tiny_spec();
        assert_eq!(s.output_names(), vec!["infections", "infectious"]);
    }
}
