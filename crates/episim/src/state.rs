//! Flattened simulation state: the complete dynamical state of a run.
//!
//! Because dwell times are Erlang (memoryless per stage), the entire
//! future of a trajectory is determined by the per-stage occupancy counts
//! plus the RNG state — there is no hidden event queue. This is exactly
//! what makes checkpoints compact and exact.

use epistats::rng::Xoshiro256PlusPlus;
use serde::{Deserialize, Serialize};

use crate::spec::ModelSpec;

/// The complete mutable state of a simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimState {
    /// Completed whole days since the epidemic's start.
    pub day: u32,
    /// Continuous simulation clock in days (equals `day` except inside a
    /// Gillespie sub-day advance).
    pub time: f64,
    /// Occupancy of every Erlang stage, flattened in spec order.
    pub stage_counts: Vec<u64>,
    /// The generator driving all stochasticity of this trajectory.
    pub rng: Xoshiro256PlusPlus,
}

impl SimState {
    /// Create a state with every stage empty and the clock at zero.
    pub fn empty(spec: &ModelSpec, seed: u64) -> Self {
        Self {
            day: 0,
            time: 0.0,
            stage_counts: vec![0; spec.total_stages()],
            rng: Xoshiro256PlusPlus::new(seed),
        }
    }

    /// Overwrite this state with `src`, reusing the existing
    /// `stage_counts` allocation — the pooled-workspace analogue of
    /// `Clone::clone` that keeps a warm buffer allocation-free.
    pub fn assign_from(&mut self, src: &Self) {
        self.day = src.day;
        self.time = src.time;
        self.stage_counts.clone_from(&src.stage_counts);
        self.rng = src.rng.clone();
    }

    /// Occupancy of a compartment (sum over its stages).
    pub fn compartment_count(&self, spec: &ModelSpec, id: usize) -> u64 {
        let offsets = spec.stage_offsets();
        self.stage_counts[offsets[id]..offsets[id + 1]].iter().sum()
    }

    /// Place `count` individuals into the first stage of a compartment.
    pub fn seed_compartment(&mut self, spec: &ModelSpec, id: usize, count: u64) {
        let offsets = spec.stage_offsets();
        self.stage_counts[offsets[id]] += count;
    }

    /// Total population across all compartments (conserved by every
    /// stepper; asserted in tests).
    pub fn total_population(&self) -> u64 {
        self.stage_counts.iter().sum()
    }

    /// Homogeneous-mixing force of infection per susceptible:
    /// `transmission_rate * sum_c(infectivity_c * count_c) / N`.
    ///
    /// Returns 0 for an empty population. Structured-mixing infections
    /// use [`Self::force_of_infection_for`] instead.
    pub fn force_of_infection(&self, spec: &ModelSpec) -> f64 {
        let n = self.total_population();
        if n == 0 {
            return 0.0;
        }
        let offsets = spec.stage_offsets();
        let mut weighted = 0.0;
        for (id, c) in spec.compartments.iter().enumerate() {
            if c.infectivity > 0.0 {
                let count: u64 = self.stage_counts[offsets[id]..offsets[id + 1]].iter().sum();
                weighted += c.infectivity * count as f64;
            }
        }
        spec.transmission_rate * weighted / n as f64
    }

    /// Force of infection felt by a specific [`Infection`] transition,
    /// honouring its susceptibility multiplier and (optional) weighted
    /// source set — one row of a contact structure.
    pub fn force_of_infection_for(
        &self,
        spec: &ModelSpec,
        infection: &crate::spec::Infection,
    ) -> f64 {
        self.force_of_infection_with(spec, infection, &spec.stage_offsets())
    }

    /// [`Self::force_of_infection_for`] against caller-supplied stage
    /// offsets (e.g. `CompiledSpec::offsets`), so per-step hot paths
    /// don't rebuild the offset table on every evaluation.
    pub fn force_of_infection_with(
        &self,
        spec: &ModelSpec,
        infection: &crate::spec::Infection,
        offsets: &[usize],
    ) -> f64 {
        let n = self.total_population();
        if n == 0 {
            return 0.0;
        }
        let count_of = |id: usize| -> f64 {
            self.stage_counts[offsets[id]..offsets[id + 1]]
                .iter()
                .sum::<u64>() as f64
        };
        let weighted = match &infection.sources {
            None => spec
                .compartments
                .iter()
                .enumerate()
                .filter(|(_, c)| c.infectivity > 0.0)
                .map(|(id, c)| c.infectivity * count_of(id))
                .sum::<f64>(),
            Some(sources) => sources
                .iter()
                .map(|&(id, w)| w * spec.compartments[id].infectivity * count_of(id))
                .sum::<f64>(),
        };
        spec.transmission_rate * infection.susceptibility * weighted / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Compartment, FlowSpec, Infection, Progression};

    fn spec() -> ModelSpec {
        ModelSpec {
            name: "t".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("I", 3, 0.5),
                Compartment::simple("R"),
            ],
            progressions: vec![Progression {
                from: 1,
                mean_dwell: 4.0,
                branches: vec![(2, 1.0)],
            }],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: 0.4,
            flows: vec![FlowSpec {
                name: "inf".into(),
                edges: vec![(0, 1)],
            }],
            censuses: vec![],
        }
    }

    #[test]
    fn seeding_and_counting() {
        let s = spec();
        let mut st = SimState::empty(&s, 1);
        st.seed_compartment(&s, 0, 990);
        st.seed_compartment(&s, 1, 10);
        assert_eq!(st.compartment_count(&s, 0), 990);
        assert_eq!(st.compartment_count(&s, 1), 10);
        assert_eq!(st.total_population(), 1000);
    }

    #[test]
    fn foi_formula() {
        let s = spec();
        let mut st = SimState::empty(&s, 1);
        st.seed_compartment(&s, 0, 900);
        st.seed_compartment(&s, 1, 100);
        // FOI = 0.4 * (0.5 * 100) / 1000 = 0.02
        assert!((st.force_of_infection(&s) - 0.02).abs() < 1e-14);
    }

    #[test]
    fn foi_zero_for_empty_population() {
        let s = spec();
        let st = SimState::empty(&s, 1);
        assert_eq!(st.force_of_infection(&s), 0.0);
    }

    #[test]
    fn structured_foi_honours_sources_and_susceptibility() {
        let s = spec();
        let mut st = SimState::empty(&s, 1);
        st.seed_compartment(&s, 0, 900);
        st.seed_compartment(&s, 1, 100);
        // Homogeneous with susceptibility 1 matches the global FOI.
        let inf = Infection::simple(0, 1);
        assert!((st.force_of_infection_for(&s, &inf) - st.force_of_infection(&s)).abs() < 1e-14);
        // Susceptibility multiplier scales linearly.
        let half = Infection {
            susceptibility: 0.5,
            ..Infection::simple(0, 1)
        };
        assert!(
            (st.force_of_infection_for(&s, &half) - 0.5 * st.force_of_infection(&s)).abs() < 1e-15
        );
        // Structured sources: weight 2 on compartment I doubles the FOI;
        // sourcing only from the (non-infectious) S pool gives zero.
        let double = Infection::weighted(0, 1, 1.0, vec![(1, 2.0)]);
        assert!(
            (st.force_of_infection_for(&s, &double) - 2.0 * st.force_of_infection(&s)).abs()
                < 1e-15
        );
        let none = Infection::weighted(0, 1, 1.0, vec![(0, 1.0)]);
        assert_eq!(st.force_of_infection_for(&s, &none), 0.0);
    }

    #[test]
    fn state_serde_round_trip() {
        let s = spec();
        let mut st = SimState::empty(&s, 42);
        st.seed_compartment(&s, 0, 5);
        st.day = 7;
        st.time = 7.0;
        let json = serde_json::to_string(&st).unwrap();
        let back: SimState = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back);
    }
}
