//! Typed errors for model construction, checkpointing, and simulation.
//!
//! Hand-rolled (no `thiserror` in the vendor tree): a small enum with
//! `Display`/`Error` impls plus a `From<SimError> for String` bridge so
//! downstream code still returning `Result<_, String>` can `?` these
//! without churn.

use std::fmt;

/// Errors produced by the simulation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A model specification failed validation (builder or spec checks).
    Spec(String),
    /// A checkpoint does not match the model layout or cannot be decoded.
    Checkpoint(String),
    /// Filesystem failure while persisting or loading simulation state.
    Io(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Spec(msg) => write!(f, "invalid model spec: {msg}"),
            SimError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SimError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for String {
    fn from(e: SimError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_category() {
        assert_eq!(
            SimError::Spec("no compartments".into()).to_string(),
            "invalid model spec: no compartments"
        );
        assert_eq!(
            SimError::Checkpoint("layout mismatch".into()).to_string(),
            "checkpoint error: layout mismatch"
        );
    }

    #[test]
    fn string_bridge_round_trips_display() {
        let s: String = SimError::Io("disk gone".into()).into();
        assert_eq!(s, "io error: disk gone");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SimError::Spec("x".into()));
    }
}
