#![warn(missing_docs)]

//! # episim — stochastic compartmental disease simulation with checkpointing
//!
//! A from-scratch reimplementation of the simulation substrate the paper
//! builds on (the COVID-Chicago stochastic SEIR model of Runge et al.,
//! 2022), structured as a *generic* engine over a declarative
//! [`spec::ModelSpec`]:
//!
//! * Compartments hold integer occupancy counts split across **Erlang
//!   dwell stages**, so non-exponential residence times are expressible
//!   while the full simulation state remains a plain count vector — which
//!   is what makes checkpoints small and exact.
//! * Transitions are **progressions** (dwell-time driven, with categorical
//!   branching on exit) and **infections** (force-of-infection driven,
//!   mass-action with per-compartment infectivity weights).
//! * Three exact-stochastic steppers share the spec: the daily
//!   [`engine::BinomialChainStepper`] (the default, matching the reference
//!   model's daily cadence), [`engine::TauLeapStepper`] (Poisson leaps
//!   with a configurable sub-day step), and [`engine::GillespieStepper`]
//!   (the exact direct method, tractable for small populations and used
//!   as the fidelity baseline in tests and benches).
//! * [`checkpoint::SimCheckpoint`] serializes the *entire* simulation
//!   state — clock, stage counts, and RNG state — and supports restarting
//!   **with new parameter values**, which is the paper's trajectory-
//!   branching mechanism (Section III-B).
//!
//! The concrete models live in [`covid`] (the full Fig 1 compartment
//! graph with detected/undetected strata) and [`seir`] (a minimal SEIR
//! used for tests, examples, and stepper-fidelity comparisons).

pub mod builder;
pub mod checkpoint;
pub mod covid;
pub mod covid_age;
pub mod engine;
pub mod error;
pub mod output;
pub mod runner;
pub mod seir;
pub mod spec;
pub mod state;
pub mod store;
pub mod workspace;

pub use builder::ModelSpecBuilder;
pub use checkpoint::SimCheckpoint;
pub use covid::{CovidModel, CovidParams};
pub use covid_age::{AgeGroup, CovidAgeModel, CovidAgeParams};
pub use engine::{BinomialChainStepper, GillespieStepper, Stepper, TauLeapStepper};
pub use error::SimError;
pub use output::DailySeries;
pub use runner::Simulation;
pub use seir::{SeirModel, SeirParams};
pub use spec::ModelSpec;
pub use state::SimState;
pub use store::{CheckpointKey, CheckpointStore};
pub use workspace::SimWorkspace;
