//! Recorded simulation output: named daily series, owned
//! ([`DailySeries`]) or structurally shared across a particle ensemble
//! ([`SharedTrajectory`]).

use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Daily output series recorded during a run: one row per simulated day,
/// one named column per flow counter and census in the model spec.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    names: Vec<String>,
    /// `columns[k][d]` = value of series `k` on day `d`.
    columns: Vec<Vec<u64>>,
    /// Day index of the first recorded row (nonzero when a run resumes
    /// from a checkpoint).
    start_day: u32,
}

impl DailySeries {
    /// Create an empty series set with the given column names, starting
    /// at `start_day`.
    pub fn new(names: Vec<String>, start_day: u32) -> Self {
        Self::with_day_capacity(names, start_day, 0)
    }

    /// [`Self::new`] with each column preallocated for `days` rows, so a
    /// run of known length never regrows its columns.
    pub fn with_day_capacity(names: Vec<String>, start_day: u32, days: usize) -> Self {
        let columns = vec![Vec::with_capacity(days); names.len()];
        Self {
            names,
            columns,
            start_day,
        }
    }

    /// Append one day's values (must match the column count).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn push_day(&mut self, values: &[u64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "push_day: column mismatch"
        );
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
    }

    /// Column names in storage order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded days.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether any days have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First recorded day index.
    pub fn start_day(&self) -> u32 {
        self.start_day
    }

    /// Column `k` in [`Self::names`] order.
    pub fn column(&self, k: usize) -> Option<&[u64]> {
        self.columns.get(k).map(Vec::as_slice)
    }

    /// Assemble a series from complete columns — the inverse of reading
    /// every [`Self::column`] (used by the durability layer to rebuild
    /// trajectory segments from their serialized form).
    ///
    /// # Errors
    /// Returns a description if the column count does not match the name
    /// count or the columns have unequal lengths.
    pub fn from_columns(
        names: Vec<String>,
        start_day: u32,
        columns: Vec<Vec<u64>>,
    ) -> Result<Self, String> {
        if names.len() != columns.len() {
            return Err(format!(
                "from_columns: {} names but {} columns",
                names.len(),
                columns.len()
            ));
        }
        let len = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != len) {
            return Err("from_columns: columns have unequal lengths".into());
        }
        Ok(Self {
            names,
            columns,
            start_day,
        })
    }

    /// A column by name.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// A column by name as `f64` (convenient for likelihood code).
    pub fn series_f64(&self, name: &str) -> Option<Vec<f64>> {
        self.series(name)
            .map(|s| s.iter().map(|&v| v as f64).collect())
    }

    /// Append all rows of `other` (which must have identical column names
    /// and start exactly where `self` ends).
    ///
    /// # Panics
    /// Panics if the names differ or the day ranges are not contiguous.
    pub fn extend(&mut self, other: &DailySeries) {
        assert_eq!(self.names, other.names, "extend: column names differ");
        assert_eq!(
            self.start_day as usize + self.len(),
            other.start_day as usize,
            "extend: day ranges are not contiguous"
        );
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from_slice(src);
        }
    }

    /// The sub-range of a column covering absolute days
    /// `[day_lo, day_hi]` inclusive, if fully recorded.
    pub fn window(&self, name: &str, day_lo: u32, day_hi: u32) -> Option<&[u64]> {
        let col = self.series(name)?;
        if day_lo < self.start_day || day_hi < day_lo {
            return None;
        }
        let lo = (day_lo - self.start_day) as usize;
        let hi = (day_hi - self.start_day) as usize;
        if hi >= col.len() {
            return None;
        }
        Some(&col[lo..=hi])
    }
}

/// One immutable span of recorded days inside a [`SharedTrajectory`]
/// chain. Segments link backwards to the segment they continue, so every
/// particle descended from the same ancestor shares the ancestor's
/// segments by `Arc` instead of holding its own copy of the history.
#[derive(Debug)]
struct TrajectorySegment {
    /// The days this segment recorded (its `start_day` is the absolute
    /// day right after the parent chain ends).
    series: DailySeries,
    /// The chain being continued (`None` for the day-0 root segment).
    parent: Option<Arc<TrajectorySegment>>,
    /// Absolute first day of the whole chain (cached from the root).
    chain_start: u32,
    /// Total recorded days across the whole chain, this segment included.
    chain_len: usize,
}

/// A persistent, structurally shared daily-output trajectory.
///
/// A windowed calibration keeps thousands of particles whose histories
/// are mostly identical: every child of a resampled ancestor repeats the
/// ancestor's past and differs only in the newest window. Storing each
/// particle as an owned [`DailySeries`] makes a continuation cost
/// `O(history)` in time and memory; a `SharedTrajectory` is an
/// `Arc`-linked chain of immutable per-window segments, so continuing a
/// trajectory appends one segment in `O(window)` and all descendants
/// share their common prefix.
///
/// Reads gather across segments and therefore return owned vectors
/// rather than slices; [`Self::flatten`] produces a plain
/// [`DailySeries`] when contiguous storage is needed.
#[derive(Clone, Debug)]
pub struct SharedTrajectory {
    head: Arc<TrajectorySegment>,
}

impl SharedTrajectory {
    /// Wrap a fully owned series as a single root segment.
    pub fn root(series: DailySeries) -> Self {
        let chain_start = series.start_day();
        let chain_len = series.len();
        Self {
            head: Arc::new(TrajectorySegment {
                series,
                parent: None,
                chain_start,
                chain_len,
            }),
        }
    }

    /// An empty trajectory with the given column names, starting at
    /// `start_day`.
    pub fn empty(names: Vec<String>, start_day: u32) -> Self {
        Self::root(DailySeries::new(names, start_day))
    }

    /// Continue this trajectory with the next window's recorded days.
    /// `O(1)` in the length of the existing history: the new trajectory
    /// shares every prior segment with `self` (and with any other
    /// continuation of the same ancestor).
    ///
    /// # Panics
    /// Panics if the names differ or `tail` does not start on the day
    /// right after this trajectory ends (the same contract as
    /// [`DailySeries::extend`]).
    #[must_use]
    pub fn append(&self, tail: DailySeries) -> Self {
        assert_eq!(self.names(), tail.names(), "append: column names differ");
        assert_eq!(
            self.head.chain_start as usize + self.head.chain_len,
            tail.start_day() as usize,
            "append: day ranges are not contiguous"
        );
        if tail.is_empty() {
            return self.clone();
        }
        if self.is_empty() && self.head.parent.is_none() {
            // Nothing to share yet: drop the empty root.
            return Self::root(tail);
        }
        let chain_len = self.head.chain_len + tail.len();
        Self {
            head: Arc::new(TrajectorySegment {
                series: tail,
                parent: Some(Arc::clone(&self.head)),
                chain_start: self.head.chain_start,
                chain_len,
            }),
        }
    }

    /// Column names in storage order.
    pub fn names(&self) -> &[String] {
        self.head.series.names()
    }

    /// Total recorded days across all segments.
    pub fn len(&self) -> usize {
        self.head.chain_len
    }

    /// Whether any days have been recorded.
    pub fn is_empty(&self) -> bool {
        self.head.chain_len == 0
    }

    /// First recorded day index.
    pub fn start_day(&self) -> u32 {
        self.head.chain_start
    }

    /// Last recorded day index (`None` when empty).
    pub fn end_day(&self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(self.head.chain_start + self.head.chain_len as u32 - 1)
        }
    }

    /// The chain root-first, so reads run in day order.
    fn chain(&self) -> Vec<&TrajectorySegment> {
        let mut segs = Vec::new();
        let mut cur = Some(&self.head);
        while let Some(seg) = cur {
            segs.push(seg.as_ref());
            cur = seg.parent.as_ref();
        }
        segs.reverse();
        segs
    }

    /// A full column by name, gathered across segments.
    pub fn series(&self, name: &str) -> Option<Vec<u64>> {
        let col = self.names().iter().position(|n| n == name)?;
        let mut out = Vec::with_capacity(self.len());
        for seg in self.chain() {
            out.extend_from_slice(&seg.series.columns[col]);
        }
        Some(out)
    }

    /// A full column by name as `f64`.
    pub fn series_f64(&self, name: &str) -> Option<Vec<f64>> {
        self.series(name)
            .map(|s| s.into_iter().map(|v| v as f64).collect())
    }

    /// The sub-range of a column covering absolute days
    /// `[day_lo, day_hi]` inclusive, if fully recorded.
    pub fn window(&self, name: &str, day_lo: u32, day_hi: u32) -> Option<Vec<u64>> {
        if day_lo < self.head.chain_start || day_hi < day_lo {
            return None;
        }
        let end = self.head.chain_start as usize + self.head.chain_len;
        if day_hi as usize >= end {
            return None;
        }
        let col = self.names().iter().position(|n| n == name)?;
        let mut out = Vec::with_capacity((day_hi - day_lo + 1) as usize);
        for seg in self.chain() {
            if seg.series.is_empty() {
                continue;
            }
            let s_lo = seg.series.start_day() as usize;
            let s_hi = s_lo + seg.series.len() - 1;
            let lo = (day_lo as usize).max(s_lo);
            let hi = (day_hi as usize).min(s_hi);
            if lo > hi {
                continue;
            }
            out.extend_from_slice(&seg.series.columns[col][lo - s_lo..=hi - s_lo]);
        }
        Some(out)
    }

    /// Fill `out` with the sub-range of a column covering absolute days
    /// `[day_lo, day_hi]` inclusive — the scratch-buffer variant of
    /// [`Self::window`] for hot scoring loops. `out` is cleared first;
    /// returns `false` (leaving `out` empty) when the range is not fully
    /// recorded or the column is unknown.
    pub fn window_into(&self, name: &str, day_lo: u32, day_hi: u32, out: &mut Vec<u64>) -> bool {
        out.clear();
        if day_lo < self.head.chain_start || day_hi < day_lo {
            return false;
        }
        let end = self.head.chain_start as usize + self.head.chain_len;
        if day_hi as usize >= end {
            return false;
        }
        let Some(col) = self.names().iter().position(|n| n == name) else {
            return false;
        };
        // Segments in a chain cover disjoint contiguous day ranges, so
        // each clip maps to a fixed offset in the output — fill in place,
        // walking head-ward without materializing the chain.
        let n = (day_hi - day_lo + 1) as usize;
        out.resize(n, 0);
        let mut filled = 0usize;
        let mut cur = Some(&self.head);
        while let Some(seg) = cur {
            if !seg.series.is_empty() {
                let s_lo = seg.series.start_day() as usize;
                let s_hi = s_lo + seg.series.len() - 1;
                let lo = (day_lo as usize).max(s_lo);
                let hi = (day_hi as usize).min(s_hi);
                if lo <= hi {
                    let base = day_lo as usize;
                    out[lo - base..=hi - base]
                        .copy_from_slice(&seg.series.columns[col][lo - s_lo..=hi - s_lo]);
                    filled += hi - lo + 1;
                }
            }
            cur = seg.parent.as_ref();
        }
        if filled == n {
            true
        } else {
            out.clear();
            false
        }
    }

    /// Copy the whole chain into one contiguous owned [`DailySeries`].
    pub fn flatten(&self) -> DailySeries {
        let mut flat = DailySeries::new(self.names().to_vec(), self.head.chain_start);
        for seg in self.chain() {
            for (dst, src) in flat.columns.iter_mut().zip(&seg.series.columns) {
                dst.extend_from_slice(src);
            }
        }
        flat
    }

    /// Iterate recorded days in order as `(absolute_day, row)` pairs,
    /// with one row value per column in [`Self::names`] order.
    pub fn iter_days(&self) -> DayRows {
        let mut segments: Vec<Arc<TrajectorySegment>> = Vec::new();
        let mut cur = Some(&self.head);
        while let Some(seg) = cur {
            segments.push(Arc::clone(seg));
            cur = seg.parent.as_ref();
        }
        segments.reverse();
        DayRows {
            segments,
            seg: 0,
            row: 0,
            day: self.head.chain_start,
        }
    }

    /// The prefix of this trajectory up to and including absolute day
    /// `day` (the whole trajectory if `day` is past the end; empty if
    /// `day` precedes the start).
    ///
    /// When `day` falls on a segment boundary — the common case, because
    /// segments are appended per calibration window and cuts happen at
    /// window-start checkpoints — the prefix is returned in `O(segments)`
    /// with zero copying: it *is* the shared ancestor chain. A
    /// mid-segment cut copies only the partial segment and still shares
    /// everything before it.
    #[must_use]
    pub fn truncated(&self, day: u32) -> Self {
        let start = self.head.chain_start;
        if day < start || self.is_empty() {
            return Self::empty(self.names().to_vec(), start);
        }
        if day >= start + self.head.chain_len as u32 - 1 {
            return self.clone();
        }
        // Walk head-ward until the segment containing `day`.
        let mut seg = &self.head;
        loop {
            let seg_first = seg.series.start_day();
            if day + 1 == seg_first {
                // Cut exactly before this segment: the parent chain is
                // the prefix, shared as-is.
                // epilint: allow(panic-unwrap) — chain invariant: day >= chain_start implies a parent exists here
                let parent = seg.parent.as_ref().expect("day >= start");
                return Self {
                    head: Arc::clone(parent),
                };
            }
            if day >= seg_first {
                break;
            }
            // epilint: allow(panic-unwrap) — chain invariant: every day in [chain_start, end] lies in some segment
            seg = seg.parent.as_ref().expect("chain covers day");
        }
        // Mid-segment cut: share the parent chain, copy the kept rows.
        let prefix = match &seg.parent {
            Some(p) => Self {
                head: Arc::clone(p),
            },
            None => Self::empty(self.names().to_vec(), start),
        };
        let seg_first = seg.series.start_day();
        let keep = (day - seg_first + 1) as usize;
        let mut partial = DailySeries::new(self.names().to_vec(), seg_first);
        for d in 0..keep {
            let row: Vec<u64> = seg.series.columns.iter().map(|c| c[d]).collect();
            partial.push_day(&row);
        }
        prefix.append(partial)
    }

    /// Number of segments in the chain.
    pub fn segment_count(&self) -> usize {
        self.chain().len()
    }

    /// The chain's segments root-first as `(id, series)` pairs. The id is
    /// the segment's allocation address — identical to the ids reported by
    /// [`Self::segment_footprint`] — so two particles that share a segment
    /// report the same id, and cross-ensemble sharing can be reconstructed
    /// by id equality (each id's parent is the preceding id in its chain).
    pub fn segments(&self) -> Vec<(usize, &DailySeries)> {
        self.chain()
            .into_iter()
            .map(|seg| (std::ptr::from_ref(seg) as usize, &seg.series))
            .collect()
    }

    /// The head segment's id — identical to the id [`Self::segments`]
    /// reports for the chain's last element, without walking (or
    /// allocating) the chain. Two trajectories with equal head ids share
    /// their entire chain, which makes this the O(1) interning key for
    /// ensemble serialization: a head id already seen means every
    /// segment of this chain has been recorded.
    pub fn head_id(&self) -> usize {
        Arc::as_ptr(&self.head) as usize
    }

    /// `(segment id, heap bytes of recorded values)` per segment, root
    /// first. The id is the segment's allocation address: two particles
    /// that share a segment report the same id, so deduplicating by id
    /// across an ensemble measures the bytes actually held.
    pub fn segment_footprint(&self) -> Vec<(usize, usize)> {
        self.chain()
            .into_iter()
            .map(|seg| {
                let bytes: usize = seg
                    .series
                    .columns
                    .iter()
                    .map(|c| c.len() * std::mem::size_of::<u64>())
                    .sum();
                (std::ptr::from_ref(seg) as usize, bytes)
            })
            .collect()
    }

    /// Heap bytes of recorded values a standalone owned copy of the full
    /// history would take — the denominator of the sharing ratio.
    pub fn flat_bytes(&self) -> usize {
        self.len() * self.names().len() * std::mem::size_of::<u64>()
    }
}

impl PartialEq for SharedTrajectory {
    /// Content equality: same names, alignment, and day values,
    /// regardless of how the history is segmented.
    fn eq(&self, other: &Self) -> bool {
        self.flatten() == other.flatten()
    }
}

impl From<DailySeries> for SharedTrajectory {
    fn from(series: DailySeries) -> Self {
        Self::root(series)
    }
}

impl Serialize for SharedTrajectory {
    fn to_value(&self) -> Value {
        self.flatten().to_value()
    }
}

impl Deserialize for SharedTrajectory {
    fn from_value(v: &Value) -> Result<Self, String> {
        DailySeries::from_value(v).map(Self::root)
    }
}

/// Iterator over the `(absolute_day, row)` pairs of a
/// [`SharedTrajectory`] (see [`SharedTrajectory::iter_days`]).
pub struct DayRows {
    segments: Vec<Arc<TrajectorySegment>>,
    seg: usize,
    row: usize,
    day: u32,
}

impl Iterator for DayRows {
    type Item = (u32, Vec<u64>);

    fn next(&mut self) -> Option<(u32, Vec<u64>)> {
        while self.seg < self.segments.len() {
            let series = &self.segments[self.seg].series;
            if self.row < series.len() {
                let row: Vec<u64> = series.columns.iter().map(|c| c[self.row]).collect();
                let day = self.day;
                self.row += 1;
                self.day += 1;
                return Some((day, row));
            }
            self.seg += 1;
            self.row = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DailySeries {
        let mut s = DailySeries::new(vec!["a".into(), "b".into()], 0);
        s.push_day(&[1, 10]);
        s.push_day(&[2, 20]);
        s.push_day(&[3, 30]);
        s
    }

    #[test]
    fn push_and_query() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.series("a").unwrap(), &[1, 2, 3]);
        assert_eq!(s.series("b").unwrap(), &[10, 20, 30]);
        assert!(s.series("c").is_none());
        assert_eq!(s.series_f64("a").unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn window_extraction() {
        let s = sample();
        assert_eq!(s.window("a", 1, 2).unwrap(), &[2, 3]);
        assert!(s.window("a", 1, 5).is_none());
        assert!(s.window("a", 2, 1).is_none());
    }

    #[test]
    fn window_respects_start_day() {
        let mut s = DailySeries::new(vec!["x".into()], 10);
        s.push_day(&[7]);
        s.push_day(&[8]);
        assert_eq!(s.window("x", 10, 11).unwrap(), &[7, 8]);
        assert!(s.window("x", 9, 10).is_none());
    }

    #[test]
    fn extend_contiguous_runs() {
        let mut a = sample();
        let mut b = DailySeries::new(vec!["a".into(), "b".into()], 3);
        b.push_day(&[4, 40]);
        a.extend(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.series("a").unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn extend_rejects_gap() {
        let mut a = sample();
        let b = DailySeries::new(vec!["a".into(), "b".into()], 5);
        a.extend(&b);
    }

    #[test]
    #[should_panic]
    fn push_rejects_wrong_width() {
        sample().push_day(&[1]);
    }

    fn segment(start: u32, values: &[(u64, u64)]) -> DailySeries {
        let mut s = DailySeries::new(vec!["a".into(), "b".into()], start);
        for &(a, b) in values {
            s.push_day(&[a, b]);
        }
        s
    }

    /// A three-segment chain: days 0..=2, 3..=4, 5..=6.
    fn chained() -> SharedTrajectory {
        SharedTrajectory::root(segment(0, &[(1, 10), (2, 20), (3, 30)]))
            .append(segment(3, &[(4, 40), (5, 50)]))
            .append(segment(5, &[(6, 60), (7, 70)]))
    }

    #[test]
    fn shared_reads_span_segments() {
        let t = chained();
        assert_eq!(t.len(), 7);
        assert_eq!(t.start_day(), 0);
        assert_eq!(t.end_day(), Some(6));
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.series("a").unwrap(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            t.series_f64("b").unwrap(),
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]
        );
        assert!(t.series("c").is_none());
        // Window crossing two segment boundaries.
        assert_eq!(t.window("a", 2, 5).unwrap(), vec![3, 4, 5, 6]);
        // Window inside one segment.
        assert_eq!(t.window("b", 3, 4).unwrap(), vec![40, 50]);
        // Out-of-coverage windows.
        assert!(t.window("a", 0, 7).is_none());
        assert!(t.window("a", 5, 4).is_none());
    }

    #[test]
    fn window_into_matches_window() {
        let t = chained();
        let mut buf = Vec::new();
        for (lo, hi) in [(0, 6), (2, 5), (3, 4), (0, 0), (6, 6), (1, 6)] {
            assert!(t.window_into("a", lo, hi, &mut buf), "range {lo}..={hi}");
            assert_eq!(buf, t.window("a", lo, hi).unwrap(), "range {lo}..={hi}");
        }
        // Failure cases clear the buffer and return false.
        assert!(!t.window_into("a", 0, 7, &mut buf));
        assert!(buf.is_empty());
        assert!(!t.window_into("a", 5, 4, &mut buf));
        assert!(!t.window_into("zzz", 0, 1, &mut buf));
        // Scratch reuse: a larger earlier fill must not leak into a
        // smaller later one.
        assert!(t.window_into("b", 0, 6, &mut buf));
        assert!(t.window_into("b", 3, 4, &mut buf));
        assert_eq!(buf, vec![40, 50]);
    }

    #[test]
    fn append_shares_the_prefix() {
        let base = SharedTrajectory::root(segment(0, &[(1, 10), (2, 20)]));
        let child1 = base.append(segment(2, &[(3, 30)]));
        let child2 = base.append(segment(2, &[(9, 90)]));
        // Both children report the same id for the shared root segment.
        let f1 = child1.segment_footprint();
        let f2 = child2.segment_footprint();
        assert_eq!(f1.len(), 2);
        assert_eq!(f1[0], f2[0], "root segment must be shared, not copied");
        assert_ne!(f1[1].0, f2[1].0);
        // The parent is untouched by either continuation.
        assert_eq!(base.len(), 2);
        assert_eq!(child1.series("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(child2.series("a").unwrap(), vec![1, 2, 9]);
        // Bytes: each segment row holds 2 columns * 8 bytes.
        assert_eq!(f1[0].1, 2 * 2 * 8);
        assert_eq!(child1.flat_bytes(), 3 * 2 * 8);
    }

    #[test]
    fn flatten_matches_owned_extend() {
        let t = chained();
        let mut owned = segment(0, &[(1, 10), (2, 20), (3, 30)]);
        owned.extend(&segment(3, &[(4, 40), (5, 50)]));
        owned.extend(&segment(5, &[(6, 60), (7, 70)]));
        assert_eq!(t.flatten(), owned);
        assert_eq!(t, SharedTrajectory::root(owned));
    }

    #[test]
    fn iter_days_walks_the_chain_in_order() {
        let rows: Vec<(u32, Vec<u64>)> = chained().iter_days().collect();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0], (0, vec![1, 10]));
        assert_eq!(rows[3], (3, vec![4, 40]));
        assert_eq!(rows[6], (6, vec![7, 70]));
    }

    #[test]
    fn truncated_at_boundary_is_the_shared_parent() {
        let t = chained();
        let prefix = t.truncated(4);
        assert_eq!(prefix.len(), 5);
        assert_eq!(prefix.segment_count(), 2);
        // Zero copying: the prefix heads are the very same segments.
        assert_eq!(
            prefix.segment_footprint(),
            t.segment_footprint()[..2].to_vec()
        );
        // Past-the-end and before-the-start cuts.
        assert_eq!(t.truncated(99).len(), 7);
        assert_eq!(t.truncated(0).len(), 1); // day 0 keeps the first row
        let t1 = SharedTrajectory::root(segment(5, &[(1, 1)]));
        assert!(t1.truncated(4).is_empty());
        assert_eq!(t1.truncated(4).start_day(), 5);
    }

    #[test]
    fn truncated_mid_segment_copies_only_the_tail_segment() {
        let t = chained();
        let prefix = t.truncated(3); // cuts inside the middle segment
        assert_eq!(prefix.len(), 4);
        assert_eq!(prefix.series("a").unwrap(), vec![1, 2, 3, 4]);
        // The root segment is still shared.
        assert_eq!(prefix.segment_footprint()[0], t.segment_footprint()[0]);
    }

    #[test]
    fn empty_root_append_and_serde_round_trip() {
        let e = SharedTrajectory::empty(vec!["a".into(), "b".into()], 0);
        assert!(e.is_empty());
        assert_eq!(e.end_day(), None);
        let t = e.append(segment(0, &[(1, 10)]));
        assert_eq!(t.segment_count(), 1, "empty root should be dropped");
        assert_eq!(t.len(), 1);
        let json = serde_json::to_string(&chained()).unwrap();
        let back: SharedTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chained());
        assert_eq!(back.segment_count(), 1);
    }

    #[test]
    fn column_access_and_from_columns_round_trip() {
        let s = sample();
        assert_eq!(s.column(0).unwrap(), &[1, 2, 3]);
        assert_eq!(s.column(1).unwrap(), &[10, 20, 30]);
        assert!(s.column(2).is_none());
        let rebuilt = DailySeries::from_columns(
            s.names().to_vec(),
            s.start_day(),
            (0..2).map(|k| s.column(k).unwrap().to_vec()).collect(),
        )
        .unwrap();
        assert_eq!(rebuilt, s);
        // Structural errors are reported, not panicked.
        assert!(DailySeries::from_columns(vec!["a".into()], 0, vec![]).is_err());
        assert!(
            DailySeries::from_columns(vec!["a".into(), "b".into()], 0, vec![vec![1], vec![]])
                .is_err()
        );
    }

    #[test]
    fn segments_expose_the_chain_with_footprint_ids() {
        let t = chained();
        let segs = t.segments();
        assert_eq!(segs.len(), 3);
        // Root-first order with the same ids as segment_footprint.
        let ids: Vec<usize> = segs.iter().map(|&(id, _)| id).collect();
        let fp_ids: Vec<usize> = t.segment_footprint().iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, fp_ids);
        assert_eq!(segs[0].1.series("a").unwrap(), &[1, 2, 3]);
        assert_eq!(segs[1].1.start_day(), 3);
        assert_eq!(segs[2].1.series("b").unwrap(), &[60, 70]);
        // Shared prefixes report shared ids across particles.
        let base = SharedTrajectory::root(segment(0, &[(1, 10)]));
        let c1 = base.append(segment(1, &[(2, 20)]));
        let c2 = base.append(segment(1, &[(9, 90)]));
        assert_eq!(c1.segments()[0].0, c2.segments()[0].0);
        assert_ne!(c1.segments()[1].0, c2.segments()[1].0);
    }

    #[test]
    #[should_panic]
    fn append_rejects_gap() {
        let _ = chained().append(segment(9, &[(1, 1)]));
    }

    #[test]
    #[should_panic]
    fn append_rejects_name_mismatch() {
        let mut other = DailySeries::new(vec!["x".into(), "y".into()], 7);
        other.push_day(&[0, 0]);
        let _ = chained().append(other);
    }
}
