//! Recorded simulation output: named daily series.

use serde::{Deserialize, Serialize};

/// Daily output series recorded during a run: one row per simulated day,
/// one named column per flow counter and census in the model spec.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    names: Vec<String>,
    /// `columns[k][d]` = value of series `k` on day `d`.
    columns: Vec<Vec<u64>>,
    /// Day index of the first recorded row (nonzero when a run resumes
    /// from a checkpoint).
    start_day: u32,
}

impl DailySeries {
    /// Create an empty series set with the given column names, starting
    /// at `start_day`.
    pub fn new(names: Vec<String>, start_day: u32) -> Self {
        let columns = vec![Vec::new(); names.len()];
        Self { names, columns, start_day }
    }

    /// Append one day's values (must match the column count).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn push_day(&mut self, values: &[u64]) {
        assert_eq!(values.len(), self.columns.len(), "push_day: column mismatch");
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
    }

    /// Column names in storage order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded days.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether any days have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First recorded day index.
    pub fn start_day(&self) -> u32 {
        self.start_day
    }

    /// A column by name.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// A column by name as `f64` (convenient for likelihood code).
    pub fn series_f64(&self, name: &str) -> Option<Vec<f64>> {
        self.series(name)
            .map(|s| s.iter().map(|&v| v as f64).collect())
    }

    /// Append all rows of `other` (which must have identical column names
    /// and start exactly where `self` ends).
    ///
    /// # Panics
    /// Panics if the names differ or the day ranges are not contiguous.
    pub fn extend(&mut self, other: &DailySeries) {
        assert_eq!(self.names, other.names, "extend: column names differ");
        assert_eq!(
            self.start_day as usize + self.len(),
            other.start_day as usize,
            "extend: day ranges are not contiguous"
        );
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from_slice(src);
        }
    }

    /// The sub-range of a column covering absolute days
    /// `[day_lo, day_hi]` inclusive, if fully recorded.
    pub fn window(&self, name: &str, day_lo: u32, day_hi: u32) -> Option<&[u64]> {
        let col = self.series(name)?;
        if day_lo < self.start_day || day_hi < day_lo {
            return None;
        }
        let lo = (day_lo - self.start_day) as usize;
        let hi = (day_hi - self.start_day) as usize;
        if hi >= col.len() {
            return None;
        }
        Some(&col[lo..=hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DailySeries {
        let mut s = DailySeries::new(vec!["a".into(), "b".into()], 0);
        s.push_day(&[1, 10]);
        s.push_day(&[2, 20]);
        s.push_day(&[3, 30]);
        s
    }

    #[test]
    fn push_and_query() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.series("a").unwrap(), &[1, 2, 3]);
        assert_eq!(s.series("b").unwrap(), &[10, 20, 30]);
        assert!(s.series("c").is_none());
        assert_eq!(s.series_f64("a").unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn window_extraction() {
        let s = sample();
        assert_eq!(s.window("a", 1, 2).unwrap(), &[2, 3]);
        assert!(s.window("a", 1, 5).is_none());
        assert!(s.window("a", 2, 1).is_none());
    }

    #[test]
    fn window_respects_start_day() {
        let mut s = DailySeries::new(vec!["x".into()], 10);
        s.push_day(&[7]);
        s.push_day(&[8]);
        assert_eq!(s.window("x", 10, 11).unwrap(), &[7, 8]);
        assert!(s.window("x", 9, 10).is_none());
    }

    #[test]
    fn extend_contiguous_runs() {
        let mut a = sample();
        let mut b = DailySeries::new(vec!["a".into(), "b".into()], 3);
        b.push_day(&[4, 40]);
        a.extend(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.series("a").unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn extend_rejects_gap() {
        let mut a = sample();
        let b = DailySeries::new(vec!["a".into(), "b".into()], 5);
        a.extend(&b);
    }

    #[test]
    #[should_panic]
    fn push_rejects_wrong_width() {
        sample().push_day(&[1]);
    }
}
