//! Tau-leaping stepper (Poisson leaps with occupancy capping).
//!
//! Event counts per channel over a leap of length `tau` are Poisson with
//! mean `rate * tau`, capped at the available occupancy so counts can
//! never go negative (the standard "bounded" tau-leap safeguard). With a
//! small `tau` this converges to the exact CTMC; it sits between the
//! chain-binomial (cheap, daily) and Gillespie (exact, expensive) in the
//! fidelity/cost trade-off benchmarked in `bench_sim`.

use epistats::dist::{sample_poisson, sample_poisson_batch};

use super::{CompiledSpec, StepScratch, Stepper};
use crate::state::SimState;

/// Poisson tau-leap stepper with a fixed leap size.
#[derive(Clone, Debug)]
pub struct TauLeapStepper {
    /// Number of equal leaps per day (>= 1).
    leaps_per_day: u32,
}

impl TauLeapStepper {
    /// Create a stepper taking `leaps_per_day` equal leaps per day.
    ///
    /// # Panics
    /// Panics if `leaps_per_day` is zero.
    pub fn new(leaps_per_day: u32) -> Self {
        assert!(leaps_per_day > 0, "TauLeapStepper: need >= 1 leap per day");
        Self { leaps_per_day }
    }

    /// Leaps per day.
    pub fn leaps_per_day(&self) -> u32 {
        self.leaps_per_day
    }
}

impl Default for TauLeapStepper {
    /// Four leaps per day — a reasonable accuracy/cost default for daily
    /// reported epidemics.
    fn default() -> Self {
        Self::new(4)
    }
}

impl Stepper for TauLeapStepper {
    fn advance_day(
        &self,
        model: &CompiledSpec,
        state: &mut SimState,
        flows: &mut [u64],
        scratch: &mut StepScratch,
    ) {
        let tau = 1.0 / self.leaps_per_day as f64;
        let spec = &model.spec;
        scratch.prepare_leap(model);

        for _ in 0..self.leaps_per_day {
            for (ii, inf) in spec.infections.iter().enumerate() {
                scratch.foi_buf[ii] = state.force_of_infection_with(spec, inf, &model.offsets);
            }
            let SimState {
                stage_counts, rng, ..
            } = state;
            scratch.deltas.iter_mut().for_each(|d| *d = 0);

            for (ii, inf) in spec.infections.iter().enumerate() {
                let foi = scratch.foi_buf[ii];
                let s_off = model.offsets[inf.susceptible];
                let s_count = stage_counts[s_off];
                if s_count == 0 || foi <= 0.0 {
                    continue;
                }
                let mean = foi * s_count as f64 * tau;
                let newly = sample_poisson(rng, mean).min(s_count);
                if newly > 0 {
                    scratch.deltas[s_off] -= newly as i64;
                    scratch.deltas[model.offsets[inf.exposed]] += newly as i64;
                    model.record_edge(flows, inf.susceptible, inf.exposed, newly);
                }
            }

            // Per-progression batched leaps: the per-stage Poisson means
            // fill the SoA `means` lane, the counts come back through
            // one batched call, and the final stage's branch split
            // follows its own draws, exactly as in the scalar walk.
            for (pi, prog) in spec.progressions.iter().enumerate() {
                let rate = model.stage_rates[pi];
                let from = prog.from;
                let base = model.offsets[from];
                let stages = spec.compartments[from].stages as usize;
                for s in 0..stages {
                    scratch.means[base + s] = rate * stage_counts[base + s] as f64 * tau;
                }
                sample_poisson_batch(
                    rng,
                    &scratch.means[base..base + stages],
                    &mut scratch.draws[base..base + stages],
                );
                scratch.batched_draws += stages as u64;
                for s in 0..stages {
                    let exits = scratch.draws[base + s].min(stage_counts[base + s]);
                    if exits == 0 {
                        continue;
                    }
                    scratch.deltas[base + s] -= exits as i64;
                    if s + 1 < stages {
                        scratch.deltas[base + s + 1] += exits as i64;
                    } else {
                        model.apply_split(rng, pi, from, exits, &mut scratch.deltas, flows);
                    }
                }
            }

            // Apply, clamping at zero in the (rare) case where capped
            // channels still jointly overdraw a stage.
            for (c, &d) in stage_counts.iter_mut().zip(scratch.deltas.iter()) {
                let next = *c as i64 + d;
                *c = next.max(0) as u64;
            }
        }
        state.day += 1;
        state.time = state.day as f64;
    }

    fn name(&self) -> &'static str {
        "tau-leap"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::si_spec;
    use super::*;

    fn init(model: &CompiledSpec, seed: u64) -> SimState {
        let mut st = SimState::empty(&model.spec, seed);
        st.seed_compartment(&model.spec, 0, 9_900);
        st.seed_compartment(&model.spec, 1, 100);
        st
    }

    #[test]
    fn population_nearly_conserved() {
        let mut sc = StepScratch::default();
        // Each stage has a single exit channel plus at most one inflow, so
        // capping keeps conservation exact here.
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = TauLeapStepper::default();
        let mut st = init(&model, 23);
        let n0 = st.total_population();
        let mut flows = vec![0u64; 2];
        for _ in 0..100 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
            assert_eq!(st.total_population(), n0);
        }
    }

    #[test]
    fn epidemic_final_size_matches_binomial_chain_roughly() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let tau = TauLeapStepper::new(8);
        let chain = super::super::BinomialChainStepper::with_substeps(8);
        let mut final_tau = Vec::new();
        let mut final_chain = Vec::new();
        for seed in 0..10u64 {
            let mut f = vec![0u64; 2];
            let mut st = init(&model, 100 + seed);
            for _ in 0..300 {
                tau.advance_day(&model, &mut st, &mut f, &mut sc);
            }
            final_tau.push(st.compartment_count(&model.spec, 2) as f64);
            let mut f = vec![0u64; 2];
            let mut st = init(&model, 200 + seed);
            for _ in 0..300 {
                chain.advance_day(&model, &mut st, &mut f, &mut sc);
            }
            final_chain.push(st.compartment_count(&model.spec, 2) as f64);
        }
        let mt: f64 = final_tau.iter().sum::<f64>() / 10.0;
        let mc: f64 = final_chain.iter().sum::<f64>() / 10.0;
        assert!(
            (mt - mc).abs() / mc < 0.05,
            "tau-leap {mt} vs chain {mc} differ by more than 5%"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = TauLeapStepper::default();
        let mut a = init(&model, 5);
        let mut b = init(&model, 5);
        let mut fa = vec![0u64; 2];
        let mut fb = vec![0u64; 2];
        for _ in 0..20 {
            stepper.advance_day(&model, &mut a, &mut fa, &mut sc);
            stepper.advance_day(&model, &mut b, &mut fb, &mut sc);
        }
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    #[should_panic]
    fn zero_leaps_rejected() {
        TauLeapStepper::new(0);
    }
}
