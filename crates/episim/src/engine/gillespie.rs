//! Exact stochastic simulation (Gillespie's direct method).
//!
//! Simulates the continuous-time Markov chain event by event: exponential
//! waiting times at the total propensity, categorical channel selection
//! proportional to per-channel propensities. Exact but O(events), so
//! practical for the small-population fidelity studies in tests and
//! `bench_sim`, not for Chicago-scale ensembles.

use super::{CompiledSpec, StepScratch, Stepper};
use crate::state::SimState;

/// Gillespie direct-method stepper.
#[derive(Clone, Debug, Default)]
pub struct GillespieStepper;

impl GillespieStepper {
    /// Create the (stateless) exact stepper.
    pub fn new() -> Self {
        Self
    }
}

impl Stepper for GillespieStepper {
    fn advance_day(
        &self,
        model: &CompiledSpec,
        state: &mut SimState,
        flows: &mut [u64],
        scratch: &mut StepScratch,
    ) {
        let spec = &model.spec;
        let day_end = state.day as f64 + 1.0;
        // Propensity layout: one channel per infection, then one channel
        // per (progression, stage). The channel buffer lives in the
        // scratch so a warm advance allocates nothing.
        let n_inf = spec.infections.len();
        let channels = &mut scratch.channels;

        loop {
            channels.clear();
            for inf in &spec.infections {
                let foi = state.force_of_infection_with(spec, inf, &model.offsets);
                let s = state.stage_counts[model.offsets[inf.susceptible]];
                channels.push(foi * s as f64);
            }
            for (pi, prog) in spec.progressions.iter().enumerate() {
                let rate = model.stage_rates[pi];
                let base = model.offsets[prog.from];
                let stages = spec.compartments[prog.from].stages as usize;
                for s in 0..stages {
                    channels.push(rate * state.stage_counts[base + s] as f64);
                }
            }
            let total: f64 = channels.iter().sum();
            if total <= 0.0 {
                break;
            }
            let wait = -state.rng.next_f64_open().ln() / total;
            if state.time + wait >= day_end {
                break;
            }
            state.time += wait;

            // Select the firing channel.
            let mut u = state.rng.next_f64() * total;
            let mut chosen = channels.len() - 1;
            for (i, &c) in channels.iter().enumerate() {
                if u < c {
                    chosen = i;
                    break;
                }
                u -= c;
            }

            if chosen < n_inf {
                let inf = &spec.infections[chosen];
                let s_off = model.offsets[inf.susceptible];
                debug_assert!(state.stage_counts[s_off] > 0);
                state.stage_counts[s_off] -= 1;
                state.stage_counts[model.offsets[inf.exposed]] += 1;
                model.record_edge(flows, inf.susceptible, inf.exposed, 1);
            } else {
                // Decode (progression, stage) from the channel index.
                let mut idx = chosen - n_inf;
                let mut found = None;
                for (pi, prog) in spec.progressions.iter().enumerate() {
                    let stages = spec.compartments[prog.from].stages as usize;
                    if idx < stages {
                        found = Some((pi, idx));
                        break;
                    }
                    idx -= stages;
                }
                // epilint: allow(panic-unwrap) — chosen < total channel count by construction of the scan above
                let (pi, stage) = found.expect("channel index in range");
                let prog = &spec.progressions[pi];
                let base = model.offsets[prog.from];
                let stages = spec.compartments[prog.from].stages as usize;
                debug_assert!(state.stage_counts[base + stage] > 0);
                state.stage_counts[base + stage] -= 1;
                if stage + 1 < stages {
                    state.stage_counts[base + stage + 1] += 1;
                } else {
                    // Branch selection.
                    let mut v = state.rng.next_f64();
                    // epilint: allow(panic-unwrap) — spec validation rejects empty branch lists
                    let mut target = prog.branches.last().expect("validated").0;
                    for &(t, p) in &prog.branches {
                        if v < p {
                            target = t;
                            break;
                        }
                        v -= p;
                    }
                    state.stage_counts[model.offsets[target]] += 1;
                    model.record_edge(flows, prog.from, target, 1);
                }
            }
        }
        state.day += 1;
        state.time = state.day as f64;
    }

    fn name(&self) -> &'static str {
        "gillespie"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::si_spec;
    use super::*;

    fn init(model: &CompiledSpec, seed: u64, n: u64, i: u64) -> SimState {
        let mut st = SimState::empty(&model.spec, seed);
        st.seed_compartment(&model.spec, 0, n - i);
        st.seed_compartment(&model.spec, 1, i);
        st
    }

    #[test]
    fn conserves_population_exactly() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = GillespieStepper::new();
        let mut st = init(&model, 31, 2_000, 20);
        let mut flows = vec![0u64; 2];
        for _ in 0..100 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
            assert_eq!(st.total_population(), 2_000);
        }
    }

    #[test]
    fn pure_death_process_mean_matches_analytic() {
        let mut sc = StepScratch::default();
        // Only I -> R (no infection): I(t) decays with the Erlang-2 dwell,
        // E[I(30)] = N * P(Erlang(2, rate 0.4) > 30) — just check a broad
        // band around the exponential-tail expectation instead of the
        // closed form: mean dwell 5 days, so after 30 days ~nothing left.
        let mut spec = si_spec();
        spec.transmission_rate = 0.0;
        let model = CompiledSpec::new(spec).unwrap();
        let stepper = GillespieStepper::new();
        let mut remaining = 0u64;
        for seed in 0..20u64 {
            let mut st = init(&model, 40 + seed, 1_000, 1_000);
            let mut flows = vec![0u64; 2];
            for _ in 0..30 {
                stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
            }
            remaining += st.compartment_count(&model.spec, 1);
        }
        // Erlang(2, rate 2/5): P(T > 30) = e^{-12} (1 + 12) ~ 8e-5.
        assert!(remaining < 40, "remaining = {remaining}");
    }

    #[test]
    fn agrees_with_chain_binomial_on_final_size() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let exact = GillespieStepper::new();
        let chain = super::super::BinomialChainStepper::with_substeps(8);
        let reps = 12u64;
        let mut fe = 0.0;
        let mut fc = 0.0;
        for seed in 0..reps {
            let mut st = init(&model, 500 + seed, 3_000, 30);
            let mut f = vec![0u64; 2];
            for _ in 0..250 {
                exact.advance_day(&model, &mut st, &mut f, &mut sc);
            }
            fe += st.compartment_count(&model.spec, 2) as f64;
            let mut st = init(&model, 900 + seed, 3_000, 30);
            let mut f = vec![0u64; 2];
            for _ in 0..250 {
                chain.advance_day(&model, &mut st, &mut f, &mut sc);
            }
            fc += st.compartment_count(&model.spec, 2) as f64;
        }
        fe /= reps as f64;
        fc /= reps as f64;
        assert!(
            (fe - fc).abs() / fe < 0.05,
            "gillespie {fe} vs chain {fc} differ by more than 5%"
        );
    }

    #[test]
    fn clock_lands_on_day_boundaries() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = GillespieStepper::new();
        let mut st = init(&model, 3, 500, 5);
        let mut flows = vec![0u64; 2];
        stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
        assert_eq!(st.day, 1);
        assert_eq!(st.time, 1.0);
        stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
        assert_eq!(st.day, 2);
    }
}
