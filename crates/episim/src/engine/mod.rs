//! Stochastic steppers: three exact interpretations of one model spec.
//!
//! | Stepper | Time step | Event law | Use |
//! |---|---|---|---|
//! | [`BinomialChainStepper`] | fixed (default 1 day) | binomial competing risks | default; matches the reference model's daily cadence |
//! | [`TauLeapStepper`] | fixed sub-day | Poisson leaps (capped) | accuracy/cost middle ground |
//! | [`GillespieStepper`] | event-driven | exact CTMC (direct method) | fidelity baseline, small populations |
//!
//! All steppers consume the same [`CompiledSpec`] and mutate a
//! [`SimState`] by exactly one day per [`Stepper::advance_day`] call,
//! accumulating the day's flow counts into a caller-provided buffer.

mod binomial_chain;
mod gillespie;
mod tau_leap;

pub use binomial_chain::BinomialChainStepper;
pub use gillespie::GillespieStepper;
pub use tau_leap::TauLeapStepper;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use epistats::dist::HazardSampler;
use epistats::rng::Xoshiro256PlusPlus;

#[cfg(test)]
use epistats::dist::sample_binomial;

use crate::error::SimError;
use crate::spec::ModelSpec;
use crate::state::SimState;

/// Monotone source for [`CompiledSpec::stamp`] identities.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// A model spec with derived lookup tables precomputed, shared by all
/// steppers (built once per simulation, not per day).
#[derive(Clone, Debug)]
pub struct CompiledSpec {
    /// The validated source spec.
    pub spec: ModelSpec,
    /// Offset of each compartment's first stage; last entry is the total.
    pub offsets: Vec<usize>,
    /// Per-progression per-stage exit rate.
    pub stage_rates: Vec<f64>,
    /// Dense `from * n_compartments + to` lookup for [`Self::record_edge`]:
    /// `u32::MAX` for an unwatched edge, else an index into
    /// `edge_watchers`. The stepper records an edge on every event, so
    /// this replaces a map walk per event with one array load. Built by
    /// iterating a `BTreeMap` in key order — replay determinism must not
    /// depend on hasher state.
    edge_index: Vec<u32>,
    /// Flow-series indices of each watched edge (see `edge_index`).
    edge_watchers: Vec<Vec<usize>>,
    /// Compartment count, the stride of `edge_index`.
    n_compartments: usize,
    /// Per-progression precompiled multinomial split plans: the
    /// conditional branch probabilities of the sequential-binomial chain
    /// and their shared p-setups, computed once per compilation instead
    /// of once per split draw.
    split_plans: Vec<Vec<SplitStep>>,
    /// Process-unique identity of this compilation, used as a cache key
    /// for derived tables (e.g. [`StepScratch`]'s hazard table). Clones
    /// share the stamp, which is sound: a clone has identical rates.
    stamp: u64,
}

impl CompiledSpec {
    /// Validate and compile a spec.
    ///
    /// # Errors
    /// Propagates [`ModelSpec::validate`] failures.
    pub fn new(spec: ModelSpec) -> Result<Self, SimError> {
        spec.validate()?;
        let offsets = spec.stage_offsets();
        let stage_rates = spec
            .progressions
            .iter()
            .map(|p| spec.stage_rate(p))
            .collect();
        let mut edge_flows: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (fi, f) in spec.flows.iter().enumerate() {
            for &edge in &f.edges {
                edge_flows.entry(edge).or_default().push(fi);
            }
        }
        let n_compartments = spec.compartments.len();
        let mut edge_index = vec![u32::MAX; n_compartments * n_compartments];
        let mut edge_watchers = Vec::with_capacity(edge_flows.len());
        for ((from, to), watchers) in edge_flows {
            edge_index[from * n_compartments + to] = edge_watchers.len() as u32;
            edge_watchers.push(watchers);
        }
        let split_plans = spec
            .progressions
            .iter()
            .map(|prog| {
                let mut prob_left = 1.0f64;
                let last = prog.branches.len() - 1;
                prog.branches
                    .iter()
                    .enumerate()
                    .map(|(i, &(target, p))| {
                        // Mirrors the sequential conditional-binomial walk
                        // of `multinomial_split`, with the per-branch
                        // conditional probability frozen at compile time.
                        let take_rest = i == last || prob_left <= 0.0;
                        let cond = if take_rest {
                            1.0
                        } else {
                            (p / prob_left).clamp(0.0, 1.0)
                        };
                        prob_left -= p;
                        SplitStep {
                            target,
                            take_rest,
                            sampler: HazardSampler::new(cond),
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            spec,
            offsets,
            stage_rates,
            edge_index,
            edge_watchers,
            n_compartments,
            split_plans,
            stamp: NEXT_STAMP.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Split `total` exiting individuals of progression `pi` across its
    /// branch targets using the precompiled conditional-binomial plan,
    /// applying branch counts directly to `deltas` and the flow series.
    /// Stream-equivalent to [`multinomial_split`] on the same branches.
    #[inline]
    pub(crate) fn apply_split(
        &self,
        rng: &mut Xoshiro256PlusPlus,
        pi: usize,
        from: usize,
        total: u64,
        deltas: &mut [i64],
        flows: &mut [u64],
    ) {
        let mut remaining = total;
        for step in &self.split_plans[pi] {
            if remaining == 0 {
                break;
            }
            let take = if step.take_rest {
                remaining
            } else {
                step.sampler.draw(rng, remaining)
            };
            if take > 0 {
                deltas[self.offsets[step.target]] += take as i64;
                self.record_edge(flows, from, step.target, take);
            }
            remaining -= take;
        }
    }

    /// Process-unique identity of this compilation (shared by clones).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Add `count` traversals of the `(from, to)` edge to every flow
    /// series that watches it.
    #[inline]
    pub fn record_edge(&self, flows: &mut [u64], from: usize, to: usize, count: u64) {
        if count == 0 {
            return;
        }
        let slot = self.edge_index[from * self.n_compartments + to];
        if slot != u32::MAX {
            for &i in &self.edge_watchers[slot as usize] {
                flows[i] += count;
            }
        }
    }

    /// End-of-day census values in spec order.
    pub fn censuses(&self, state: &SimState) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.spec.censuses.len());
        self.censuses_into(state, &mut out);
        out
    }

    /// Append end-of-day census values (spec order) to `out` without
    /// allocating a fresh vector — the hot-loop variant of
    /// [`Self::censuses`]. Uses the precompiled stage offsets, so unlike
    /// [`SimState::compartment_count`] it never rebuilds the offset
    /// table.
    pub fn censuses_into(&self, state: &SimState, out: &mut Vec<u64>) {
        for c in &self.spec.censuses {
            out.push(
                c.compartments
                    .iter()
                    .map(|&id| {
                        state.stage_counts[self.offsets[id]..self.offsets[id + 1]]
                            .iter()
                            .sum::<u64>()
                    })
                    .sum(),
            );
        }
    }
}

/// One branch of a precompiled multinomial split plan: the conditional
/// probability of taking this branch given the mass left after earlier
/// branches, with its p-derived binomial setup built once per
/// compilation.
#[derive(Clone, Copy, Debug)]
struct SplitStep {
    /// Destination compartment id.
    target: usize,
    /// Final (or probability-exhausted) branch: takes everything left
    /// without consuming randomness.
    take_rest: bool,
    /// Shared setup for `Binomial(remaining, cond)` draws.
    sampler: HazardSampler,
}

/// Reusable scratch buffers for [`Stepper::advance_day`].
///
/// Owned by the caller (typically a [`crate::runner::Simulation`] or a
/// [`crate::workspace::SimWorkspace`]) and threaded through every day
/// advance, so the hot loop performs **zero heap allocations per
/// simulated day** after the first (warm-up) day. The scratch is pure
/// workspace: it never influences results, only where intermediates live —
/// a fresh scratch and a warm one produce bit-identical trajectories.
///
/// Cached derived tables (the discrete-hazard table and its shared
/// binomial p-setups) are keyed on [`CompiledSpec::stamp`] plus the
/// stepper configuration, so one scratch can serve many
/// models/parameterizations in sequence — the per-worker reuse pattern of
/// the parallel grid.
///
/// The layout is struct-of-arrays: per-stage intermediates (`deltas`,
/// `draws`, `means`) are parallel flat arrays indexed by the dense stage
/// offset of [`CompiledSpec::offsets`], so the steppers batch whole
/// compartments through [`HazardSampler::draw_many`] /
/// [`epistats::dist::sample_poisson_batch`] over contiguous slices.
#[derive(Clone, Debug, Default)]
pub struct StepScratch {
    /// Net per-stage occupancy change within one substep.
    pub(crate) deltas: Vec<i64>,
    /// Per-stage event counts drawn this substep (stage exits for the
    /// chain stepper, leap counts for tau-leap).
    pub(crate) draws: Vec<u64>,
    /// Per-stage Poisson leap means (tau-leap).
    pub(crate) means: Vec<f64>,
    /// Per-infection force of infection, snapshotted at substep start.
    pub(crate) foi_buf: Vec<f64>,
    /// Per-channel propensities (Gillespie).
    pub(crate) channels: Vec<f64>,
    /// Per-progression exit probabilities `1 - exp(-rate * dt)`, computed
    /// once per `(model, substeps)` instead of per substep per day.
    pub(crate) hazards: Vec<f64>,
    /// Per-progression shared binomial setups for the hazard table —
    /// each progression's stages share one exit probability, so the
    /// p-derived half of binomial setup is paid once per hazard refresh,
    /// not once per draw.
    pub(crate) hazard_samplers: Vec<HazardSampler>,
    /// Cache key for `hazards`/`hazard_samplers`:
    /// `(CompiledSpec::stamp, substeps)`.
    hazard_key: Option<(u64, u32)>,
    /// Draws issued through batched sampling entry points
    /// ([`HazardSampler::draw_many`] /
    /// [`epistats::dist::sample_poisson_batch`]) — telemetry only, never
    /// feeds results.
    pub(crate) batched_draws: u64,
}

impl StepScratch {
    /// Create an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the SoA buffers for `model` and refresh the hazard table and
    /// its shared samplers if `(model, substeps)` differs from the
    /// cached key.
    pub(crate) fn prepare_chain(&mut self, model: &CompiledSpec, substeps: u32) {
        let n_stages = model.spec.total_stages();
        self.deltas.resize(n_stages, 0);
        self.draws.resize(n_stages, 0);
        self.foi_buf.resize(model.spec.infections.len(), 0.0);
        if self.hazard_key != Some((model.stamp, substeps)) {
            let dt = 1.0 / substeps as f64;
            self.hazards.clear();
            self.hazards
                .extend(model.stage_rates.iter().map(|&r| -(-r * dt).exp_m1()));
            self.hazard_samplers.clear();
            self.hazard_samplers
                .extend(self.hazards.iter().map(|&p| HazardSampler::new(p)));
            self.hazard_key = Some((model.stamp, substeps));
        }
    }

    /// Size the SoA buffers for `model` (tau-leap needs no hazard table:
    /// its Poisson means are linear in the rates).
    pub(crate) fn prepare_leap(&mut self, model: &CompiledSpec) {
        let n_stages = model.spec.total_stages();
        self.deltas.resize(n_stages, 0);
        self.draws.resize(n_stages, 0);
        self.means.resize(n_stages, 0.0);
        self.foi_buf.resize(model.spec.infections.len(), 0.0);
    }

    /// Draws issued through batched sampling entry points since this
    /// scratch was created.
    pub fn batched_draws(&self) -> u64 {
        self.batched_draws
    }
}

/// A stochastic integrator advancing a model state one day at a time.
pub trait Stepper: Send + Sync {
    /// Advance `state` by exactly one day, adding the day's edge
    /// traversal counts into `flows` (length = number of flow series).
    /// `scratch` provides reusable buffers; any [`StepScratch`] works
    /// (results never depend on its contents), but reusing one across
    /// days makes the advance allocation-free.
    fn advance_day(
        &self,
        model: &CompiledSpec,
        state: &mut SimState,
        flows: &mut [u64],
        scratch: &mut StepScratch,
    );

    /// Short identifier for logs and benchmark labels.
    fn name(&self) -> &'static str;
}

/// Split `total` exiting individuals across branch targets with the given
/// probabilities, by sequential conditional binomial draws (an exact
/// multinomial sample). Superseded in the steppers by the precompiled
/// [`CompiledSpec::apply_split`] plans; retained as the readable
/// reference implementation the equivalence test pins them against.
#[cfg(test)]
pub(crate) fn multinomial_split(
    rng: &mut Xoshiro256PlusPlus,
    total: u64,
    branches: &[(usize, f64)],
    out: &mut Vec<(usize, u64)>,
) {
    out.clear();
    let mut remaining = total;
    let mut prob_left = 1.0f64;
    for (i, &(target, p)) in branches.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let take = if i == branches.len() - 1 || prob_left <= 0.0 {
            remaining
        } else {
            let cond = (p / prob_left).clamp(0.0, 1.0);
            sample_binomial(rng, remaining, cond)
        };
        if take > 0 {
            out.push((target, take));
        }
        remaining -= take;
        prob_left -= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Compartment, FlowSpec, Infection, Progression};

    pub(crate) fn si_spec() -> ModelSpec {
        ModelSpec {
            name: "si".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("I", 2, 1.0),
                Compartment::simple("R"),
            ],
            progressions: vec![Progression {
                from: 1,
                mean_dwell: 5.0,
                branches: vec![(2, 1.0)],
            }],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: 0.5,
            flows: vec![
                FlowSpec {
                    name: "infections".into(),
                    edges: vec![(0, 1)],
                },
                FlowSpec {
                    name: "recoveries".into(),
                    edges: vec![(1, 2)],
                },
            ],
            censuses: vec![],
        }
    }

    #[test]
    fn compile_rejects_invalid_spec() {
        let mut s = si_spec();
        s.transmission_rate = -1.0;
        assert!(CompiledSpec::new(s).is_err());
    }

    #[test]
    fn record_edge_fans_out_to_watchers() {
        let mut s = si_spec();
        s.flows.push(FlowSpec {
            name: "also_inf".into(),
            edges: vec![(0, 1)],
        });
        let c = CompiledSpec::new(s).unwrap();
        let mut flows = vec![0u64; 3];
        c.record_edge(&mut flows, 0, 1, 7);
        c.record_edge(&mut flows, 1, 2, 3);
        c.record_edge(&mut flows, 2, 0, 100); // unwatched edge
        assert_eq!(flows, vec![7, 3, 7]);
    }

    #[test]
    fn multinomial_split_conserves_total() {
        let mut rng = Xoshiro256PlusPlus::new(1);
        let branches = [(0usize, 0.2), (1, 0.5), (2, 0.3)];
        let mut out = Vec::new();
        for total in [0u64, 1, 17, 1000] {
            multinomial_split(&mut rng, total, &branches, &mut out);
            let sum: u64 = out.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, total);
        }
    }

    #[test]
    fn multinomial_split_respects_probabilities() {
        let mut rng = Xoshiro256PlusPlus::new(2);
        let branches = [(0usize, 0.25), (1, 0.75)];
        let mut out = Vec::new();
        let mut counts = [0u64; 2];
        for _ in 0..200 {
            multinomial_split(&mut rng, 1000, &branches, &mut out);
            for &(t, c) in &out {
                counts[t] += c;
            }
        }
        let frac = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn apply_split_matches_multinomial_split_stream() {
        // The precompiled split plan must consume the identical RNG
        // stream and produce the identical branch counts as the scalar
        // reference walk, for every branch shape the covid models use.
        let mut spec = si_spec();
        spec.progressions[0].branches = vec![(0, 0.25), (2, 0.45), (1, 0.30)];
        let model = CompiledSpec::new(spec.clone()).unwrap();
        let n_stages = model.spec.total_stages();
        let mut out = Vec::new();
        for seed in 0..20u64 {
            for total in [0u64, 1, 13, 4096, 1_000_000] {
                let mut rng_a = Xoshiro256PlusPlus::new(seed);
                let mut rng_b = Xoshiro256PlusPlus::new(seed);
                let mut deltas = vec![0i64; n_stages];
                let mut flows = vec![0u64; model.spec.flows.len()];
                model.apply_split(&mut rng_a, 0, 1, total, &mut deltas, &mut flows);
                multinomial_split(&mut rng_b, total, &spec.progressions[0].branches, &mut out);
                let mut want = vec![0i64; n_stages];
                for &(target, count) in &out {
                    want[model.offsets[target]] += count as i64;
                }
                assert_eq!(deltas, want, "seed {seed} total {total}");
                assert_eq!(
                    rng_a, rng_b,
                    "RNG streams diverged: seed {seed} total {total}"
                );
            }
        }
    }

    #[test]
    fn multinomial_split_single_branch_takes_all() {
        let mut rng = Xoshiro256PlusPlus::new(3);
        let mut out = Vec::new();
        multinomial_split(&mut rng, 42, &[(5usize, 1.0)], &mut out);
        assert_eq!(out, vec![(5, 42)]);
    }
}
