//! Daily binomial-chain stepper (chain-binomial / discrete-hazard model).
//!
//! Each sub-step of length `dt` converts every per-capita rate `r` into an
//! exit probability `1 - exp(-r dt)` and draws binomial counts from the
//! *start-of-step* state snapshot, so transitions within a step are
//! order-independent. This is the classical Reed–Frost-style scheme used
//! by the COVID-Chicago reference model at `dt = 1` day.

use epistats::dist::HazardSampler;

use super::{CompiledSpec, StepScratch, Stepper};
use crate::error::SimError;
use crate::state::SimState;

/// Chain-binomial stepper with a fixed sub-day step.
#[derive(Clone, Debug)]
pub struct BinomialChainStepper {
    /// Number of equal sub-steps per day (>= 1).
    substeps: u32,
}

impl BinomialChainStepper {
    /// The reference configuration: one step per day.
    pub fn daily() -> Self {
        Self { substeps: 1 }
    }

    /// Use `substeps` equal steps per day (finer steps reduce the
    /// discrete-hazard approximation error of simultaneous transitions).
    ///
    /// # Panics
    /// Panics if `substeps` is zero; use [`Self::try_with_substeps`] to
    /// handle that case without panicking.
    pub fn with_substeps(substeps: u32) -> Self {
        // epilint: allow(panic-unwrap) — documented panicking convenience wrapper over try_with_substeps
        Self::try_with_substeps(substeps).expect("BinomialChainStepper: substeps must be >= 1")
    }

    /// Fallible constructor: validates the substep count.
    ///
    /// # Errors
    /// Returns [`SimError::Spec`] if `substeps` is zero.
    pub fn try_with_substeps(substeps: u32) -> Result<Self, SimError> {
        if substeps == 0 {
            return Err(SimError::Spec(
                "BinomialChainStepper: substeps must be >= 1".into(),
            ));
        }
        Ok(Self { substeps })
    }

    /// Sub-steps per day.
    pub fn substeps(&self) -> u32 {
        self.substeps
    }
}

impl Default for BinomialChainStepper {
    fn default() -> Self {
        Self::daily()
    }
}

impl Stepper for BinomialChainStepper {
    fn advance_day(
        &self,
        model: &CompiledSpec,
        state: &mut SimState,
        flows: &mut [u64],
        scratch: &mut StepScratch,
    ) {
        let dt = 1.0 / self.substeps as f64;
        let spec = &model.spec;
        // Sizes the SoA buffers and refreshes the hazard table
        // (per-progression `1 - exp(-rate dt)`) plus its shared binomial
        // p-setups only when the (model, substeps) key changed — the
        // exp_m1/ln_1p calls disappear from the substep loop.
        scratch.prepare_chain(model, self.substeps);

        for _ in 0..self.substeps {
            // Forces of infection from the step-start snapshot, before
            // any draw mutates the RNG borrow.
            for (ii, inf) in spec.infections.iter().enumerate() {
                scratch.foi_buf[ii] = state.force_of_infection_with(spec, inf, &model.offsets);
            }
            // Split the state borrow so batched draws can read occupancy
            // slices while the RNG advances.
            let SimState {
                stage_counts, rng, ..
            } = state;
            scratch.deltas.iter_mut().for_each(|d| *d = 0);

            // Infections: S -> E, each with its own (possibly
            // contact-structured) force of infection.
            for (ii, inf) in spec.infections.iter().enumerate() {
                let foi = scratch.foi_buf[ii];
                if foi <= 0.0 {
                    continue;
                }
                let p_inf = -(-foi * dt).exp_m1();
                let s_off = model.offsets[inf.susceptible];
                let newly = HazardSampler::new(p_inf).draw(rng, stage_counts[s_off]);
                if newly > 0 {
                    scratch.deltas[s_off] -= newly as i64;
                    scratch.deltas[model.offsets[inf.exposed]] += newly as i64;
                    model.record_edge(flows, inf.susceptible, inf.exposed, newly);
                }
            }

            // Progressions: each progression's stages share one exit
            // hazard, so the whole compartment batches through the
            // shared p-setup over its contiguous occupancy slice; the
            // final stage's branch split follows its own draws, exactly
            // as in the scalar walk.
            for (pi, prog) in spec.progressions.iter().enumerate() {
                if scratch.hazards[pi] <= 0.0 {
                    continue;
                }
                let from = prog.from;
                let base = model.offsets[from];
                let stages = spec.compartments[from].stages as usize;
                let hs = scratch.hazard_samplers[pi];
                hs.draw_many(
                    rng,
                    &stage_counts[base..base + stages],
                    &mut scratch.draws[base..base + stages],
                );
                scratch.batched_draws += stages as u64;
                for s in 0..stages {
                    let exits = scratch.draws[base + s];
                    if exits == 0 {
                        continue;
                    }
                    scratch.deltas[base + s] -= exits as i64;
                    if s + 1 < stages {
                        scratch.deltas[base + s + 1] += exits as i64;
                    } else {
                        model.apply_split(rng, pi, from, exits, &mut scratch.deltas, flows);
                    }
                }
            }

            // Apply all moves simultaneously.
            for (c, &d) in stage_counts.iter_mut().zip(&scratch.deltas) {
                let next = *c as i64 + d;
                debug_assert!(next >= 0, "negative occupancy after step");
                *c = next as u64;
            }
        }
        state.day += 1;
        state.time = state.day as f64;
    }

    fn name(&self) -> &'static str {
        "binomial-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::si_spec;
    use super::*;

    fn init_state(model: &CompiledSpec, seed: u64) -> SimState {
        let mut st = SimState::empty(&model.spec, seed);
        st.seed_compartment(&model.spec, 0, 9_900);
        st.seed_compartment(&model.spec, 1, 100);
        st
    }

    #[test]
    fn population_is_conserved() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = BinomialChainStepper::daily();
        let mut st = init_state(&model, 7);
        let n0 = st.total_population();
        let mut flows = vec![0u64; 2];
        for _ in 0..60 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
            assert_eq!(st.total_population(), n0);
        }
        assert_eq!(st.day, 60);
    }

    #[test]
    fn epidemic_grows_then_burns_out() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = BinomialChainStepper::daily();
        let mut st = init_state(&model, 11);
        let mut flows = vec![0u64; 2];
        for _ in 0..300 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
        }
        // R0 = 0.5 * 5 = 2.5 -> most of the population gets infected.
        let recovered = st.compartment_count(&model.spec, 2);
        assert!(recovered > 8_000, "recovered = {recovered}");
        // Flow counter saw every infection: infections = R + I - initial I.
        let infectious_now = st.compartment_count(&model.spec, 1);
        assert_eq!(flows[0], recovered + infectious_now - 100);
        assert_eq!(flows[1], recovered);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = BinomialChainStepper::daily();
        let mut a = init_state(&model, 5);
        let mut b = init_state(&model, 5);
        let mut fa = vec![0u64; 2];
        let mut fb = vec![0u64; 2];
        for _ in 0..30 {
            stepper.advance_day(&model, &mut a, &mut fa, &mut sc);
            stepper.advance_day(&model, &mut b, &mut fb, &mut sc);
        }
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn substeps_preserve_conservation() {
        let mut sc = StepScratch::default();
        let model = CompiledSpec::new(si_spec()).unwrap();
        let stepper = BinomialChainStepper::with_substeps(4);
        let mut st = init_state(&model, 13);
        let n0 = st.total_population();
        let mut flows = vec![0u64; 2];
        for _ in 0..30 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
        }
        assert_eq!(st.total_population(), n0);
    }

    #[test]
    fn zero_transmission_means_no_infections() {
        let mut sc = StepScratch::default();
        let mut spec = si_spec();
        spec.transmission_rate = 0.0;
        let model = CompiledSpec::new(spec).unwrap();
        let stepper = BinomialChainStepper::daily();
        let mut st = init_state(&model, 17);
        let mut flows = vec![0u64; 2];
        for _ in 0..50 {
            stepper.advance_day(&model, &mut st, &mut flows, &mut sc);
        }
        assert_eq!(flows[0], 0);
        assert_eq!(st.compartment_count(&model.spec, 0), 9_900);
    }

    #[test]
    #[should_panic]
    fn zero_substeps_rejected() {
        BinomialChainStepper::with_substeps(0);
    }
}
