//! Age-stratified COVID model — the "Covid-age" configuration the paper's
//! Section V-A draws its ground truth from.
//!
//! The single-population compartment graph of [`crate::covid`] is
//! replicated per age group, with:
//!
//! * a **contact matrix** `M[i][j]` scaling how much group `j`'s
//!   infectious pool contributes to group `i`'s force of infection
//!   (encoded as structured [`Infection::weighted`] sources);
//! * per-group **susceptibility** multipliers;
//! * per-group **severity ladders** (fraction symptomatic / severe /
//!   critical / fatal), capturing the strong age gradient of COVID-19
//!   outcomes.
//!
//! Outputs aggregate across groups (`infections`, `deaths`, censuses —
//! the series the calibrator scores) and are additionally recorded per
//! group (`infections@<group>`, `deaths@<group>`) for age-targeted
//! analyses, which the paper's Discussion motivates (school closures,
//! age-targeted vaccination).

use serde::{Deserialize, Serialize};

use crate::spec::{
    CensusSpec, Compartment, CompartmentId, FlowSpec, Infection, ModelSpec, Progression,
};
use crate::state::SimState;

/// Disease parameters shared by all age groups (durations, detection,
/// relative infectiousness) — mirrors the scalar fields of
/// [`crate::covid::CovidParams`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharedDisease {
    /// Mean latent (E) duration.
    pub latent_period: f64,
    /// Mean presymptomatic duration.
    pub presymp_duration: f64,
    /// Mean asymptomatic infectious duration.
    pub asymp_duration: f64,
    /// Mean mild-symptomatic duration.
    pub mild_duration: f64,
    /// Mean severe-symptomatic duration until hospitalization.
    pub severe_to_hosp: f64,
    /// Mean pre-critical hospital stay.
    pub hosp_duration: f64,
    /// Mean ICU stay.
    pub icu_duration: f64,
    /// Mean post-ICU stay.
    pub post_icu_duration: f64,
    /// Detection probability: asymptomatic.
    pub detect_asymp: f64,
    /// Detection probability: presymptomatic.
    pub detect_presymp: f64,
    /// Detection probability: mild.
    pub detect_mild: f64,
    /// Detection probability: severe.
    pub detect_severe: f64,
    /// Relative infectiousness of asymptomatic/presymptomatic carriers.
    pub rel_infectious_asymp: f64,
    /// Relative infectiousness of detected (isolating) carriers.
    pub rel_infectious_detected: f64,
    /// Erlang stages for the latent compartment.
    pub latent_stages: u32,
    /// Erlang stages for other non-terminal compartments.
    pub progression_stages: u32,
}

impl Default for SharedDisease {
    fn default() -> Self {
        let c = crate::covid::CovidParams::default();
        Self {
            latent_period: c.latent_period,
            presymp_duration: c.presymp_duration,
            asymp_duration: c.asymp_duration,
            mild_duration: c.mild_duration,
            severe_to_hosp: c.severe_to_hosp,
            hosp_duration: c.hosp_duration,
            icu_duration: c.icu_duration,
            post_icu_duration: c.post_icu_duration,
            detect_asymp: c.detect_asymp,
            detect_presymp: c.detect_presymp,
            detect_mild: c.detect_mild,
            detect_severe: c.detect_severe,
            rel_infectious_asymp: c.rel_infectious_asymp,
            rel_infectious_detected: c.rel_infectious_detected,
            latent_stages: c.latent_stages,
            progression_stages: c.progression_stages,
        }
    }
}

/// One age group's demography and severity profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AgeGroup {
    /// Group label (used in compartment and output names).
    pub name: String,
    /// Group population.
    pub population: u64,
    /// Initially exposed individuals.
    pub initial_exposed: u64,
    /// Relative susceptibility to infection (1 = baseline).
    pub susceptibility: f64,
    /// Fraction of infections becoming symptomatic.
    pub frac_symptomatic: f64,
    /// Fraction of symptomatic becoming severe.
    pub frac_severe: f64,
    /// Fraction of hospitalized becoming critical.
    pub frac_critical: f64,
    /// Fraction of critical dying.
    pub frac_fatal: f64,
}

/// Full configuration of the age-stratified model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CovidAgeParams {
    /// Global transmission rate (the calibration parameter).
    pub transmission_rate: f64,
    /// Shared disease natural history.
    pub shared: SharedDisease,
    /// The age groups.
    pub groups: Vec<AgeGroup>,
    /// Row-stochastic-ish contact matrix: `contact[i][j]` weights group
    /// `j`'s infectious pool in group `i`'s force of infection.
    pub contact: Vec<Vec<f64>>,
}

impl CovidAgeParams {
    /// A three-group (children / adults / elderly) configuration with a
    /// plausible COVID-like age gradient, scaled to `population` total.
    pub fn three_groups(population: u64, initial_exposed: u64) -> Self {
        let frac = [0.22, 0.60, 0.18];
        let groups = vec![
            AgeGroup {
                name: "child".into(),
                population: (population as f64 * frac[0]) as u64,
                initial_exposed: (initial_exposed as f64 * frac[0]) as u64,
                susceptibility: 0.6,
                frac_symptomatic: 0.35,
                frac_severe: 0.01,
                frac_critical: 0.15,
                frac_fatal: 0.05,
            },
            AgeGroup {
                name: "adult".into(),
                population: (population as f64 * frac[1]) as u64,
                initial_exposed: (initial_exposed as f64 * frac[1]) as u64,
                susceptibility: 1.0,
                frac_symptomatic: 0.65,
                frac_severe: 0.06,
                frac_critical: 0.22,
                frac_fatal: 0.25,
            },
            AgeGroup {
                name: "elder".into(),
                population: (population as f64 * frac[2]) as u64,
                initial_exposed: (initial_exposed as f64 * frac[2]).max(1.0) as u64,
                susceptibility: 1.1,
                frac_symptomatic: 0.80,
                frac_severe: 0.22,
                frac_critical: 0.40,
                frac_fatal: 0.55,
            },
        ];
        // POLYMOD-flavoured mixing: strong within-group contact for
        // children, adults mix with everyone, elderly mix less.
        let contact = vec![
            vec![1.8, 0.8, 0.2],
            vec![0.8, 1.2, 0.4],
            vec![0.2, 0.4, 0.7],
        ];
        Self {
            transmission_rate: 0.30,
            shared: SharedDisease::default(),
            groups,
            contact,
        }
    }

    /// Validate ranges and the contact-matrix shape.
    ///
    /// # Errors
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups.is_empty() {
            return Err("no age groups".into());
        }
        if self.contact.len() != self.groups.len() {
            return Err("contact matrix rows != group count".into());
        }
        for (i, row) in self.contact.iter().enumerate() {
            if row.len() != self.groups.len() {
                return Err(format!("contact matrix row {i} has wrong length"));
            }
            for &v in row {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("contact matrix entry {v} invalid"));
                }
            }
        }
        if !(self.transmission_rate.is_finite() && self.transmission_rate >= 0.0) {
            return Err(format!("transmission_rate {}", self.transmission_rate));
        }
        let mut names = std::collections::BTreeSet::new();
        for g in &self.groups {
            if !names.insert(g.name.as_str()) {
                return Err(format!("duplicate group name '{}'", g.name));
            }
            if g.initial_exposed > g.population {
                return Err(format!("group '{}': initial exceeds population", g.name));
            }
            for (label, v) in [
                ("susceptibility", g.susceptibility),
                ("frac_symptomatic", g.frac_symptomatic),
                ("frac_severe", g.frac_severe),
                ("frac_critical", g.frac_critical),
                ("frac_fatal", g.frac_fatal),
            ] {
                let ok = if label == "susceptibility" {
                    v.is_finite() && v >= 0.0
                } else {
                    (0.0..=1.0).contains(&v)
                };
                if !ok {
                    return Err(format!("group '{}': {label} = {v}", g.name));
                }
            }
        }
        Ok(())
    }

    /// Total population across groups.
    pub fn total_population(&self) -> u64 {
        self.groups.iter().map(|g| g.population).sum()
    }
}

/// Per-group compartment roles, in layout order.
const ROLES: [&str; 15] = [
    "S", "E", "As_u", "As_d", "P_u", "P_d", "Sm_u", "Sm_d", "Ss_u", "Ss_d", "H", "C", "Hp", "D",
    "R",
];
const N_ROLES: usize = ROLES.len();
/// Roles that are infectious outside hospital (with their base weight
/// resolved at build time).
const ROLE_S: usize = 0;
const ROLE_E: usize = 1;
const ROLE_AS_U: usize = 2;
const ROLE_AS_D: usize = 3;
const ROLE_P_U: usize = 4;
const ROLE_P_D: usize = 5;
const ROLE_SM_U: usize = 6;
const ROLE_SM_D: usize = 7;
const ROLE_SS_U: usize = 8;
const ROLE_SS_D: usize = 9;
const ROLE_H: usize = 10;
const ROLE_C: usize = 11;
const ROLE_HP: usize = 12;
const ROLE_D: usize = 13;
const ROLE_R: usize = 14;

/// The age-stratified COVID model.
#[derive(Clone, Debug)]
pub struct CovidAgeModel {
    params: CovidAgeParams,
}

impl CovidAgeModel {
    /// Create a model from validated parameters.
    ///
    /// # Errors
    /// Propagates [`CovidAgeParams::validate`] failures.
    pub fn new(params: CovidAgeParams) -> Result<Self, String> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &CovidAgeParams {
        &self.params
    }

    /// Compartment id of `role` within `group`.
    fn cid(group: usize, role: usize) -> CompartmentId {
        group * N_ROLES + role
    }

    /// Build the declarative spec: `groups x 15` compartments, per-group
    /// progressions, contact-matrix-weighted infections, aggregated and
    /// per-group outputs.
    pub fn spec(&self) -> ModelSpec {
        let p = &self.params;
        let sh = &p.shared;
        let ka = sh.rel_infectious_asymp;
        let kd = sh.rel_infectious_detected;
        let st = sh.progression_stages;
        let n_groups = p.groups.len();

        let mut compartments = Vec::with_capacity(n_groups * N_ROLES);
        let mut progressions = Vec::new();
        let mut infections = Vec::new();

        for (gi, g) in p.groups.iter().enumerate() {
            let suffix = format!("@{}", g.name);
            let infectivity = |role: usize| -> f64 {
                match role {
                    ROLE_AS_U | ROLE_P_U => ka,
                    ROLE_AS_D | ROLE_P_D => ka * kd,
                    ROLE_SM_U | ROLE_SS_U => 1.0,
                    ROLE_SM_D | ROLE_SS_D => kd,
                    _ => 0.0,
                }
            };
            for (ri, role) in ROLES.iter().enumerate() {
                let stages = match ri {
                    ROLE_S | ROLE_D | ROLE_R => 1,
                    ROLE_E => sh.latent_stages,
                    _ => st,
                };
                compartments.push(Compartment::new(
                    &format!("{role}{suffix}"),
                    stages,
                    infectivity(ri),
                ));
            }

            let fs = g.frac_symptomatic;
            let fsev = g.frac_severe;
            progressions.extend([
                Progression {
                    from: Self::cid(gi, ROLE_E),
                    mean_dwell: sh.latent_period,
                    branches: vec![
                        (
                            Self::cid(gi, ROLE_AS_U),
                            (1.0 - fs) * (1.0 - sh.detect_asymp),
                        ),
                        (Self::cid(gi, ROLE_AS_D), (1.0 - fs) * sh.detect_asymp),
                        (Self::cid(gi, ROLE_P_U), fs * (1.0 - sh.detect_presymp)),
                        (Self::cid(gi, ROLE_P_D), fs * sh.detect_presymp),
                    ],
                },
                Progression {
                    from: Self::cid(gi, ROLE_AS_U),
                    mean_dwell: sh.asymp_duration,
                    branches: vec![(Self::cid(gi, ROLE_R), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_AS_D),
                    mean_dwell: sh.asymp_duration,
                    branches: vec![(Self::cid(gi, ROLE_R), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_P_U),
                    mean_dwell: sh.presymp_duration,
                    branches: vec![
                        (
                            Self::cid(gi, ROLE_SM_U),
                            (1.0 - fsev) * (1.0 - sh.detect_mild),
                        ),
                        (Self::cid(gi, ROLE_SM_D), (1.0 - fsev) * sh.detect_mild),
                        (Self::cid(gi, ROLE_SS_U), fsev * (1.0 - sh.detect_severe)),
                        (Self::cid(gi, ROLE_SS_D), fsev * sh.detect_severe),
                    ],
                },
                Progression {
                    from: Self::cid(gi, ROLE_P_D),
                    mean_dwell: sh.presymp_duration,
                    branches: vec![
                        (Self::cid(gi, ROLE_SM_D), 1.0 - fsev),
                        (Self::cid(gi, ROLE_SS_D), fsev),
                    ],
                },
                Progression {
                    from: Self::cid(gi, ROLE_SM_U),
                    mean_dwell: sh.mild_duration,
                    branches: vec![(Self::cid(gi, ROLE_R), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_SM_D),
                    mean_dwell: sh.mild_duration,
                    branches: vec![(Self::cid(gi, ROLE_R), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_SS_U),
                    mean_dwell: sh.severe_to_hosp,
                    branches: vec![(Self::cid(gi, ROLE_H), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_SS_D),
                    mean_dwell: sh.severe_to_hosp,
                    branches: vec![(Self::cid(gi, ROLE_H), 1.0)],
                },
                Progression {
                    from: Self::cid(gi, ROLE_H),
                    mean_dwell: sh.hosp_duration,
                    branches: vec![
                        (Self::cid(gi, ROLE_C), g.frac_critical),
                        (Self::cid(gi, ROLE_R), 1.0 - g.frac_critical),
                    ],
                },
                Progression {
                    from: Self::cid(gi, ROLE_C),
                    mean_dwell: sh.icu_duration,
                    branches: vec![
                        (Self::cid(gi, ROLE_D), g.frac_fatal),
                        (Self::cid(gi, ROLE_HP), 1.0 - g.frac_fatal),
                    ],
                },
                Progression {
                    from: Self::cid(gi, ROLE_HP),
                    mean_dwell: sh.post_icu_duration,
                    branches: vec![(Self::cid(gi, ROLE_R), 1.0)],
                },
            ]);

            // Structured infection: group gi's susceptibles feel every
            // group gj's infectious pool scaled by contact[gi][gj].
            let infectious_roles = [
                ROLE_AS_U, ROLE_AS_D, ROLE_P_U, ROLE_P_D, ROLE_SM_U, ROLE_SM_D, ROLE_SS_U,
                ROLE_SS_D,
            ];
            let mut sources = Vec::with_capacity(n_groups * infectious_roles.len());
            for (gj, &w) in p.contact[gi].iter().enumerate() {
                for &role in &infectious_roles {
                    sources.push((Self::cid(gj, role), w));
                }
            }
            infections.push(Infection::weighted(
                Self::cid(gi, ROLE_S),
                Self::cid(gi, ROLE_E),
                g.susceptibility,
                sources,
            ));
        }

        // Aggregated flows (scored by the calibrator) + per-group flows.
        let mut flows = vec![
            FlowSpec {
                name: "infections".into(),
                edges: (0..n_groups)
                    .map(|gi| (Self::cid(gi, ROLE_S), Self::cid(gi, ROLE_E)))
                    .collect(),
            },
            FlowSpec {
                name: "deaths".into(),
                edges: (0..n_groups)
                    .map(|gi| (Self::cid(gi, ROLE_C), Self::cid(gi, ROLE_D)))
                    .collect(),
            },
        ];
        for (gi, g) in p.groups.iter().enumerate() {
            flows.push(FlowSpec {
                name: format!("infections@{}", g.name),
                edges: vec![(Self::cid(gi, ROLE_S), Self::cid(gi, ROLE_E))],
            });
            flows.push(FlowSpec {
                name: format!("deaths@{}", g.name),
                edges: vec![(Self::cid(gi, ROLE_C), Self::cid(gi, ROLE_D))],
            });
        }
        let censuses = vec![
            CensusSpec {
                name: "hospital_census".into(),
                compartments: (0..n_groups)
                    .flat_map(|gi| {
                        [
                            Self::cid(gi, ROLE_H),
                            Self::cid(gi, ROLE_C),
                            Self::cid(gi, ROLE_HP),
                        ]
                    })
                    .collect(),
            },
            CensusSpec {
                name: "icu_census".into(),
                compartments: (0..n_groups).map(|gi| Self::cid(gi, ROLE_C)).collect(),
            },
        ];

        ModelSpec {
            name: "covid-age".into(),
            compartments,
            progressions,
            infections,
            transmission_rate: p.transmission_rate,
            flows,
            censuses,
        }
    }

    /// Initial state: each group seeded with its own exposures.
    pub fn initial_state(&self, seed: u64) -> SimState {
        let spec = self.spec();
        let mut st = SimState::empty(&spec, seed);
        for (gi, g) in self.params.groups.iter().enumerate() {
            st.seed_compartment(
                &spec,
                Self::cid(gi, ROLE_S),
                g.population - g.initial_exposed,
            );
            st.seed_compartment(&spec, Self::cid(gi, ROLE_E), g.initial_exposed);
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BinomialChainStepper;
    use crate::runner::Simulation;

    fn small() -> CovidAgeModel {
        CovidAgeModel::new(CovidAgeParams::three_groups(60_000, 120)).unwrap()
    }

    #[test]
    fn spec_builds_and_validates() {
        let m = small();
        let spec = m.spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.compartments.len(), 3 * 15);
        assert_eq!(spec.infections.len(), 3);
        assert!(spec.compartment_id("Ss_d@elder").is_some());
        assert!(spec.compartment_id("Ss_d@nobody").is_none());
    }

    #[test]
    fn population_conserved_and_outputs_consistent() {
        let m = small();
        let mut sim =
            Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(3)).unwrap();
        sim.run_until(100);
        assert_eq!(
            sim.state().total_population(),
            m.params().total_population()
        );
        let s = sim.series();
        // Aggregate infections equal the sum of per-group infections.
        let total: Vec<u64> = s.series("infections").unwrap().to_vec();
        let mut summed = vec![0u64; total.len()];
        for g in &m.params().groups {
            for (acc, v) in summed
                .iter_mut()
                .zip(s.series(&format!("infections@{}", g.name)).unwrap())
            {
                *acc += v;
            }
        }
        assert_eq!(total, summed);
    }

    #[test]
    fn age_gradient_shows_in_death_rates() {
        // Elderly must die at a far higher per-infection rate than
        // children (severity ladder: 0.22*0.40*0.55 vs 0.01*0.15*0.05).
        let m = small();
        let mut inf = [0u64; 3];
        let mut deaths = [0u64; 3];
        for seed in 0..4u64 {
            let mut sim = Simulation::new(
                m.spec(),
                BinomialChainStepper::daily(),
                m.initial_state(seed),
            )
            .unwrap();
            sim.run_until(200);
            for (gi, g) in m.params().groups.iter().enumerate() {
                inf[gi] += sim
                    .series()
                    .series(&format!("infections@{}", g.name))
                    .unwrap()
                    .iter()
                    .sum::<u64>();
                deaths[gi] += sim
                    .series()
                    .series(&format!("deaths@{}", g.name))
                    .unwrap()
                    .iter()
                    .sum::<u64>();
            }
        }
        let ifr = |gi: usize| deaths[gi] as f64 / inf[gi].max(1) as f64;
        assert!(
            ifr(2) > 20.0 * ifr(0).max(1e-6),
            "elder IFR {:.4} not >> child IFR {:.4}",
            ifr(2),
            ifr(0)
        );
        assert!(ifr(1) > ifr(0));
    }

    #[test]
    fn contact_matrix_shapes_attack_rates() {
        // Zero out all contact to/from children: children see (almost) no
        // infections beyond their initial seeds' household... in this
        // model, exactly none besides their seeded exposures.
        let mut params = CovidAgeParams::three_groups(60_000, 120);
        params.contact[0] = vec![0.0, 0.0, 0.0];
        let isolated = CovidAgeModel::new(params).unwrap();
        let mut sim = Simulation::new(
            isolated.spec(),
            BinomialChainStepper::daily(),
            isolated.initial_state(9),
        )
        .unwrap();
        sim.run_until(150);
        let child_inf: u64 = sim
            .series()
            .series("infections@child")
            .unwrap()
            .iter()
            .sum();
        assert_eq!(child_inf, 0, "isolated children still got infected");
        let adult_inf: u64 = sim
            .series()
            .series("infections@adult")
            .unwrap()
            .iter()
            .sum();
        assert!(adult_inf > 1_000, "adult epidemic should still run");
    }

    #[test]
    fn checkpoint_restart_works_for_age_model() {
        let m = small();
        let mut sim =
            Simulation::new(m.spec(), BinomialChainStepper::daily(), m.initial_state(5)).unwrap();
        sim.run_until(40);
        let ck = sim.checkpoint();
        let mut hot = m.params().clone();
        hot.transmission_rate = 0.6;
        let m2 = CovidAgeModel::new(hot).unwrap();
        let mut resumed =
            Simulation::resume_with_seed(m2.spec(), BinomialChainStepper::daily(), &ck, 77)
                .unwrap();
        resumed.run_until(80);
        assert_eq!(resumed.state().day, 80);
        assert_eq!(
            resumed.state().total_population(),
            m.params().total_population()
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = CovidAgeParams::three_groups(10_000, 20);
        p.contact.pop();
        assert!(CovidAgeModel::new(p).is_err());
        let mut p = CovidAgeParams::three_groups(10_000, 20);
        p.contact[1][2] = -0.5;
        assert!(CovidAgeModel::new(p).is_err());
        let mut p = CovidAgeParams::three_groups(10_000, 20);
        p.groups[0].frac_fatal = 1.2;
        assert!(CovidAgeModel::new(p).is_err());
        let mut p = CovidAgeParams::three_groups(10_000, 20);
        p.groups[1].name = p.groups[0].name.clone();
        assert!(CovidAgeModel::new(p).is_err());
    }
}
