#![warn(missing_docs)]

//! # epibench — figure regeneration and benchmarking harness
//!
//! One binary per paper figure (see DESIGN.md's experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2_ground_truth` | Fig 2 — simulated ground truth |
//! | `fig3_single_window` | Fig 3 — single-window IS on case counts |
//! | `fig4_sequential_cases` | Fig 4a/4b — sequential calibration, cases only |
//! | `fig5_cases_deaths` | Fig 5a/5b — cases + deaths, and the CI-width comparison vs Fig 4 |
//! | `scaling` | the HPC claims — thread scaling and checkpoint-restart savings |
//! | `ablation` | resampling schemes, bias modes, adaptive refinement |
//! | `calibrate` | config-driven CLI (JSON [`runspec::RunSpec`]) |
//!
//! Each prints the series/rows behind the figure and writes CSVs under
//! `results/`. Default scale is laptop-friendly; pass `--full` for the
//! paper's 25,000 x 20 ensemble (HPC-sized).

pub mod runspec;

use epidata::Scenario;
use epismc_core::config::CalibrationConfig;
use epismc_core::observation::BiasMode;

/// Parsed command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Scenario scale: `tiny`, `small` (default), or `full`.
    pub scale: String,
    /// Parameter tuples per window.
    pub n_params: usize,
    /// Replicates per tuple.
    pub n_replicates: usize,
    /// Posterior resample size.
    pub resample_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Thread count (None = rayon default).
    pub threads: Option<usize>,
    /// Binomial bias mode.
    pub bias_mode: BiasMode,
    /// Output directory for CSVs.
    pub out_dir: std::path::PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: "small".into(),
            n_params: 1_500,
            n_replicates: 10,
            resample_size: 2_000,
            seed: 20_240_615,
            threads: None,
            bias_mode: BiasMode::Sampled,
            out_dir: "results".into(),
        }
    }
}

impl Args {
    /// Parse from `std::env::args`, panicking with usage text on errors.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    /// Parse from an explicit argument vector.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse_from(argv: Vec<String>) -> Self {
        let mut args = Self::default();
        let mut it = argv.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--full" => {
                    // Paper scale: 25,000 x 20 = 500,000 trajectories,
                    // resample 10,000 (Section V-B) on the 2.7M scenario.
                    args.scale = "full".into();
                    args.n_params = 25_000;
                    args.n_replicates = 20;
                    args.resample_size = 10_000;
                }
                "--scale" => args.scale = take("--scale"),
                "--n-params" => {
                    args.n_params = take("--n-params").parse().expect("--n-params: integer")
                }
                "--n-reps" => {
                    args.n_replicates = take("--n-reps").parse().expect("--n-reps: integer")
                }
                "--resample" => {
                    args.resample_size = take("--resample").parse().expect("--resample: integer")
                }
                "--seed" => args.seed = take("--seed").parse().expect("--seed: integer"),
                "--threads" => {
                    args.threads = Some(take("--threads").parse().expect("--threads: integer"))
                }
                "--bias-mode" => {
                    args.bias_mode = match take("--bias-mode").as_str() {
                        "sampled" => BiasMode::Sampled,
                        "mean" => BiasMode::Mean,
                        other => panic!("--bias-mode: 'sampled' or 'mean', got '{other}'"),
                    }
                }
                "--out" => args.out_dir = take("--out").into(),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --scale tiny|small|full | --n-params N | \
                         --n-reps N | --resample N | --seed N | --threads N | \
                         --bias-mode sampled|mean | --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        args
    }

    /// Build the scenario for the chosen scale.
    ///
    /// # Panics
    /// Panics on an unknown scale name.
    pub fn scenario(&self) -> Scenario {
        match self.scale.as_str() {
            "tiny" => Scenario::paper_tiny(),
            "small" => Scenario::paper_small(),
            "full" => Scenario::paper_full(),
            other => panic!("unknown scale '{other}' (tiny|small|full)"),
        }
    }

    /// Build the calibration config for these arguments.
    pub fn config(&self) -> CalibrationConfig {
        let mut b = CalibrationConfig::builder()
            .n_params(self.n_params)
            .n_replicates(self.n_replicates)
            .resample_size(self.resample_size)
            .seed(self.seed)
            .sigma(1.0)
            .bias_mode(self.bias_mode);
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        b.build()
    }
}

/// Print a named section header to stdout.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Format an aligned numeric table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_build_valid_config() {
        let a = Args::default();
        assert!(a.config().validate().is_ok());
        assert_eq!(a.scenario().name, "paper-small");
    }

    #[test]
    fn full_flag_sets_paper_scale() {
        let a = Args::parse_from(vec!["--full".into()]);
        assert_eq!(a.n_params, 25_000);
        assert_eq!(a.n_replicates, 20);
        assert_eq!(a.resample_size, 10_000);
        assert_eq!(a.scenario().name, "paper-full");
    }

    #[test]
    fn individual_flags_override() {
        let a = Args::parse_from(
            [
                "--scale",
                "tiny",
                "--n-params",
                "10",
                "--n-reps",
                "2",
                "--seed",
                "9",
                "--threads",
                "3",
                "--bias-mode",
                "mean",
                "--resample",
                "44",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(a.scenario().name, "paper-tiny");
        assert_eq!(a.n_params, 10);
        assert_eq!(a.n_replicates, 2);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, Some(3));
        assert_eq!(a.bias_mode, BiasMode::Mean);
        assert_eq!(a.resample_size, 44);
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        Args::parse_from(vec!["--bogus".into()]);
    }

    #[test]
    #[should_panic]
    fn bad_bias_mode_panics() {
        Args::parse_from(vec!["--bias-mode".into(), "magic".into()]);
    }
}
