//! Config-driven calibration CLI: the operational entry point.
//!
//! ```bash
//! calibrate                      # built-in defaults (paper windows, small scale)
//! calibrate my_campaign.json    # declarative RunSpec
//! calibrate --print-spec        # emit the default spec as JSON and exit
//! ```
//!
//! Runs the sequential calibration described by the spec, prints the
//! per-window posterior summary, and writes the parameter trace,
//! posterior samples, and credible ribbons under the spec's `out_dir`.

use epibench::runspec::{RunSpec, SourceSpec};
use epibench::{row, section};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::diagnostics::{PosteriorSummary, Ribbon};
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--print-spec") {
        println!(
            "{}",
            serde_json::to_string_pretty(&RunSpec::default()).expect("serialize")
        );
        return;
    }
    let spec = match args.first() {
        None => RunSpec::default(),
        Some(path) => {
            let json =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            RunSpec::from_json(&json).unwrap_or_else(|e| panic!("invalid spec: {e}"))
        }
    };
    spec.validate().expect("spec validated at parse");
    let scenario = spec.scenario().expect("validated");
    println!(
        "calibrate: scenario '{}' | {} windows | {} x {} trajectories | sources: {:?}{}",
        scenario.name,
        spec.windows.len(),
        spec.calibration.n_params,
        spec.calibration.n_replicates,
        spec.sources,
        if spec.adaptive.is_some() {
            " | adaptive"
        } else {
            ""
        }
    );

    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed = match spec.sources {
        SourceSpec::Cases => ObservedData::cases_only_with(
            truth.observed_cases.clone(),
            spec.calibration.bias_mode,
            spec.calibration.sigma,
        ),
        SourceSpec::CasesDeaths => ObservedData::cases_and_deaths_with(
            truth.observed_cases.clone(),
            truth.deaths.clone(),
            spec.calibration.bias_mode,
            spec.calibration.sigma,
        ),
    };
    let (kt, kr) = spec.kernels();
    let mut calibrator = SequentialCalibrator::new(&simulator, spec.calibration.clone(), kt, kr);
    if let Some(a) = spec.adaptive {
        calibrator = calibrator.with_adaptive(a);
    }
    let plan = spec.window_plan();
    let started = std::time::Instant::now();
    let result = calibrator
        .run(&Priors::paper(), &observed, &plan)
        .expect("calibration");
    println!("done in {:.1}s", started.elapsed().as_secs_f64());

    section("per-window posterior");
    let widths = [10, 9, 9, 9, 9, 6, 6];
    println!(
        "{}",
        row(
            &["window", "th_mean", "th_sd", "rho_mean", "rho_sd", "ESS%", "iters"]
                .map(String::from),
            &widths
        )
    );
    let mut trace: Vec<[f64; 5]> = Vec::new();
    for w in &result.windows {
        let th = PosteriorSummary::of_theta(&w.posterior, 0);
        let rh = PosteriorSummary::of_rho(&w.posterior);
        let ess_pct =
            100.0 * w.ess / (spec.calibration.n_params * spec.calibration.n_replicates) as f64;
        println!(
            "{}",
            row(
                &[
                    format!("[{},{}]", w.window.start, w.window.end),
                    format!("{:.3}", th.mean),
                    format!("{:.3}", th.sd),
                    format!("{:.3}", rh.mean),
                    format!("{:.3}", rh.sd),
                    format!("{ess_pct:.0}"),
                    format!("{}", w.iterations),
                ],
                &widths
            )
        );
        trace.push([w.window.start as f64, th.mean, th.sd, rh.mean, rh.sd]);
    }

    // Artifacts.
    let out = std::path::PathBuf::from(&spec.out_dir);
    let trace_table = Table::from_pairs(vec![
        ("window_start", trace.iter().map(|r| r[0]).collect()),
        ("theta_mean", trace.iter().map(|r| r[1]).collect()),
        ("theta_sd", trace.iter().map(|r| r[2]).collect()),
        ("rho_mean", trace.iter().map(|r| r[3]).collect()),
        ("rho_sd", trace.iter().map(|r| r[4]).collect()),
    ]);
    trace_table
        .write_csv(&out.join("parameter_trace.csv"))
        .expect("write trace");

    let final_post = result.final_posterior();
    let samples = Table::from_pairs(vec![
        ("theta", final_post.thetas(0)),
        ("rho", final_post.rhos()),
    ]);
    samples
        .write_csv(&out.join("posterior_samples.csv"))
        .expect("write samples");

    let lo = plan.windows()[0].start;
    let hi = plan.horizon();
    let reported =
        Ribbon::from_ensemble_reported(final_post, "infections", lo, hi).expect("ribbon");
    let days: Vec<f64> = (lo..=hi).map(|d| d as f64).collect();
    let rib = Table::from_pairs(vec![
        ("day", days),
        ("q05", reported.q05),
        ("q50", reported.q50),
        ("q95", reported.q95),
    ]);
    rib.write_csv(&out.join("reported_ribbon.csv"))
        .expect("write ribbon");

    println!(
        "\nwrote parameter_trace.csv, posterior_samples.csv, reported_ribbon.csv under {}",
        out.display()
    );
}
