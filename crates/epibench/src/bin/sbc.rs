//! Simulation-based calibration of the full inference pipeline
//! (Talts et al. 2018): draws `(theta*, rho*)` from the prior, generates
//! prior-predictive data through the simulator + bias model, calibrates,
//! and ranks the truths inside the posterior. Uniform ranks = the
//! pipeline is self-consistent.
//!
//! Prints rank histograms and chi-square uniformity statistics for theta
//! and rho, and writes the raw ranks to CSV.

use epibench::{row, section, Args};
use epidata::io::Table;
use epismc_core::simulator::SeirSimulator;
use epismc_core::sis::Priors;
use epismc_core::validate::{run_sbc, SbcConfig};
use epismc_core::window::TimeWindow;
use epismc_core::CalibrationConfig;
use epistats::score::pit_uniformity_statistic;

fn main() {
    let mut args = Args::parse();
    if args.n_params == Args::default().n_params {
        args.n_params = 150;
        args.n_replicates = 4;
        args.resample_size = 300;
    }
    // SBC replicates many full calibrations; use the cheap SEIR model so
    // the study finishes in seconds.
    let simulator = SeirSimulator::new(episim::seir::SeirParams {
        population: 10_000,
        initial_exposed: 50,
        ..Default::default()
    })
    .expect("params");
    let priors = Priors {
        theta: vec![Box::new(epismc_core::prior::UniformPrior::new(0.2, 0.7))],
        rho: Box::new(epismc_core::prior::BetaPrior::new(4.0, 1.0)),
    };
    let replicates = 60usize;
    let subsample = 20usize;
    let config = SbcConfig {
        replicates,
        subsample,
        window: TimeWindow::new(5, 25),
        seed: args.seed,
        calibration: CalibrationConfig::builder()
            .n_params(args.n_params)
            .n_replicates(args.n_replicates)
            .resample_size(args.resample_size)
            .seed(1)
            .build(),
    };
    println!(
        "sbc: {replicates} replicates, SEIR 10k pop, window [5, 25], {} x {} per posterior",
        args.n_params, args.n_replicates
    );
    let started = std::time::Instant::now();
    let result = run_sbc(&simulator, &priors, &config).expect("sbc");
    println!("done in {:.1}s", started.elapsed().as_secs_f64());

    let bins = 5usize;
    let histogram = |ranks: &[f64]| -> Vec<usize> {
        let mut counts = vec![0usize; bins];
        for &r in ranks {
            counts[((r * bins as f64).floor() as usize).min(bins - 1)] += 1;
        }
        counts
    };
    section("rank histograms (uniform = calibrated)");
    let widths = [8, 28, 14];
    println!(
        "{}",
        row(
            &["param", "histogram (5 bins)", "chi2(4)"].map(String::from),
            &widths
        )
    );
    for (label, ranks) in [
        ("theta", result.normalized_theta_ranks()),
        ("rho", result.normalized_rho_ranks()),
    ] {
        let h = histogram(&ranks);
        let stat = pit_uniformity_statistic(&ranks, bins);
        println!(
            "{}",
            row(
                &[label.to_string(), format!("{h:?}"), format!("{stat:.1}"),],
                &widths
            )
        );
    }
    println!(
        "(chi-square with {} dof: mean {}, 95th percentile ~{:.1}; the finite-ensemble\n\
         posterior adds some excess, see epismc::validate docs)",
        bins - 1,
        bins - 1,
        9.49
    );

    let table = Table::from_pairs(vec![
        (
            "theta_rank",
            result.theta_ranks.iter().map(|&r| r as f64).collect(),
        ),
        (
            "rho_rank",
            result.rho_ranks.iter().map(|&r| r as f64).collect(),
        ),
    ]);
    let path = args.out_dir.join("sbc_ranks.csv");
    table.write_csv(&path).expect("write csv");
    println!("\nwrote {}", path.display());
}
