//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Resampling scheme** — multinomial (the paper's choice) vs
//!    systematic / stratified / residual: Monte Carlo variance of the
//!    posterior mean and ancestor diversity under each.
//! 2. **Bias mode** — sampled binomial thinning (the paper's generative
//!    model) vs conditional-mean thinning: effect on the posteriors of
//!    `rho` and `theta`.
//! 3. **Adaptive refinement** — plain SIS vs ESS-triggered iterated
//!    refinement on the paper's hard fourth window (the day-62
//!    transmission jump).

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::adaptive::AdaptiveConfig;
use epismc_core::diagnostics::PosteriorSummary;
use epismc_core::observation::BiasMode;
use epismc_core::prior::JitterKernel;
use epismc_core::resample::{Multinomial, Resampler, Residual, Stratified, Systematic};
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator, SingleWindowIs};
use epismc_core::window::{TimeWindow, WindowPlan};
use epistats::rng::Xoshiro256PlusPlus;
use epistats::summary::{mean, variance, weighted_mean};

fn main() {
    let mut args = Args::parse();
    if args.n_params == Args::default().n_params {
        args.n_params = 400;
        args.n_replicates = 8;
        args.resample_size = 800;
    }
    let scenario = args.scenario();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let window = TimeWindow::new(20, 33);

    // ------------------------------------------------------------------
    section("1. resampling schemes (same weighted candidates)");
    let mut cfg = args.config();
    cfg.keep_prior_ensemble = true;
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let result = SingleWindowIs::new(&simulator, cfg.clone())
        .run(&Priors::paper(), &observed, window)
        .expect("calibration");
    let candidates = result.prior_ensemble.as_ref().expect("kept");
    let weights = candidates.normalized_weights();
    let thetas = candidates.thetas(0);
    let target_mean = weighted_mean(&thetas, &weights);

    let schemes: Vec<Box<dyn Resampler>> = vec![
        Box::new(Multinomial),
        Box::new(Systematic),
        Box::new(Stratified),
        Box::new(Residual),
    ];
    let widths = [12, 12, 14, 12];
    println!("weighted target mean theta = {target_mean:.4}");
    println!(
        "{}",
        row(
            &["scheme", "mean_bias", "resamp_var", "uniq_mean"].map(String::from),
            &widths
        )
    );
    let mut scheme_rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for s in &schemes {
        let mut rng = Xoshiro256PlusPlus::new(1234);
        let reps = 40;
        let mut means = Vec::with_capacity(reps);
        let mut uniq = Vec::with_capacity(reps);
        for _ in 0..reps {
            let idx = s.resample(&weights, args.resample_size, &mut rng);
            means.push(mean(&idx.iter().map(|&i| thetas[i]).collect::<Vec<_>>()));
            let mut u = idx.clone();
            u.sort_unstable();
            u.dedup();
            uniq.push(u.len() as f64);
        }
        let bias = mean(&means) - target_mean;
        let var = variance(&means);
        println!(
            "{}",
            row(
                &[
                    s.name().to_string(),
                    format!("{bias:+.5}"),
                    format!("{var:.2e}"),
                    format!("{:.0}", mean(&uniq)),
                ],
                &widths
            )
        );
        scheme_rows.push((s.name().to_string(), bias, var, mean(&uniq)));
    }
    println!("(all schemes unbiased; systematic/stratified cut resampling variance)");

    // ------------------------------------------------------------------
    section("2. bias mode: sampled binomial vs conditional mean");
    let widths = [10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["mode", "th_mean", "th_sd", "rho_mean", "rho_sd"].map(String::from),
            &widths
        )
    );
    for (label, mode) in [("sampled", BiasMode::Sampled), ("mean", BiasMode::Mean)] {
        let obs = ObservedData::cases_only_with(truth.observed_cases.clone(), mode, 1.0);
        let res = SingleWindowIs::new(&simulator, args.config())
            .run(&Priors::paper(), &obs, window)
            .expect("calibration");
        let th = PosteriorSummary::of_theta(&res.posterior, 0);
        let rh = PosteriorSummary::of_rho(&res.posterior);
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{:.3}", th.mean),
                    format!("{:.3}", th.sd),
                    format!("{:.3}", rh.mean),
                    format!("{:.3}", rh.sd),
                ],
                &widths
            )
        );
    }
    println!("(sampled thinning folds reporting noise into the weights, per the paper; both modes recover theta)");

    // ------------------------------------------------------------------
    section("3. adaptive refinement on the day-62 jump window");
    let plan = WindowPlan::paper(scenario.horizon);
    let kernels = || {
        (
            vec![JitterKernel::symmetric(0.06, 0.05, 0.8)],
            JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
        )
    };
    let true_last = truth.theta_truth[61];
    let widths = [10, 10, 10, 8, 7];
    println!(
        "{}",
        row(
            &["variant", "th_w4", "abs_err", "ESS%", "iters"].map(String::from),
            &widths
        )
    );
    let mut adapt_rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (label, adaptive) in [
        ("plain", None),
        (
            "adaptive",
            Some(AdaptiveConfig {
                max_iterations: 3,
                target_ess_fraction: 0.05,
                jitter_decay: 0.7,
            }),
        ),
    ] {
        let (kt, kr) = kernels();
        let mut cal = SequentialCalibrator::new(&simulator, args.config(), kt, kr);
        if let Some(a) = adaptive {
            cal = cal.with_adaptive(a);
        }
        let res = cal
            .run(&Priors::paper(), &observed, &plan)
            .expect("calibration");
        let last = res.windows.last().expect("windows");
        let th = PosteriorSummary::of_theta(&last.posterior, 0);
        let ess_pct = 100.0 * last.ess / (args.n_params * args.n_replicates) as f64;
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{:.3}", th.mean),
                    format!("{:.3}", (th.mean - true_last).abs()),
                    format!("{ess_pct:.1}"),
                    format!("{}", last.iterations),
                ],
                &widths
            )
        );
        adapt_rows.push((
            label.to_string(),
            th.mean,
            (th.mean - true_last).abs(),
            ess_pct,
            last.iterations as f64,
        ));
    }
    println!("(truth in the final window: theta = {true_last:.2})");

    // CSV artifact.
    let table = Table::from_pairs(vec![
        ("scheme_bias", scheme_rows.iter().map(|r| r.1).collect()),
        ("scheme_var", scheme_rows.iter().map(|r| r.2).collect()),
        ("scheme_uniq", scheme_rows.iter().map(|r| r.3).collect()),
        (
            "adaptive_err",
            adapt_rows
                .iter()
                .map(|r| r.2)
                .chain(std::iter::repeat(0.0))
                .take(4)
                .collect(),
        ),
    ]);
    let path = args.out_dir.join("ablation.csv");
    table.write_csv(&path).expect("write csv");
    println!("\nwrote {}", path.display());
}
