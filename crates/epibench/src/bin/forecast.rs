//! Operational forecasting demo: calibrate through day 61 (three
//! windows), issue a posterior-predictive forecast for days 62–90, and
//! score it against the realized truth — which contains the paper's
//! day-62 transmission jump (theta 0.25 -> 0.40).
//!
//! The point this binary makes quantitatively: a forecast issued *before*
//! a regime change under-predicts (poor CRPS vs an oracle that knows the
//! new theta), and re-calibrating on the fourth window repairs it — the
//! operational argument for the paper's sequential scheme.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::forecast::Forecaster;
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator};
use epismc_core::window::{TimeWindow, WindowPlan};
use epistats::score::pit_uniformity_statistic;

fn main() {
    let args = Args::parse();
    let scenario = args.scenario();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed = ObservedData::cases_only_with(truth.observed_cases.clone(), args.bias_mode, 1.0);
    println!(
        "forecast: calibrate '{}' through day 61, forecast days 62..90 ({} x {})",
        scenario.name, args.n_params, args.n_replicates
    );

    let make_calibrator = || {
        SequentialCalibrator::new(
            &simulator,
            args.config(),
            vec![JitterKernel::symmetric(0.10, 0.05, 0.8)],
            JitterKernel::asymmetric(0.05, 0.06, 0.05, 1.0),
        )
    };

    // Calibrate through day 61 only (the pre-jump information set).
    let plan3 = WindowPlan::new(vec![
        TimeWindow::new(20, 33),
        TimeWindow::new(34, 47),
        TimeWindow::new(48, 61),
    ]);
    let started = std::time::Instant::now();
    let res3 = make_calibrator()
        .run(&Priors::paper(), &observed, &plan3)
        .expect("calibration");
    println!(
        "3-window calibration done in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    let horizon_days = scenario.horizon - 61;
    let future_truth: Vec<f64> = truth.true_cases[61..scenario.horizon as usize].to_vec();
    let fc = Forecaster::new(&simulator);

    // (a) the honest day-61 forecast,
    let honest = fc
        .forecast(
            res3.final_posterior(),
            horizon_days,
            300,
            9,
            &["infections"],
        )
        .expect("forecast");
    // (b) an oracle that knows the post-jump theta,
    let oracle = fc
        .forecast_with(
            res3.final_posterior(),
            horizon_days,
            300,
            9,
            &["infections"],
            |_| vec![0.40],
        )
        .expect("forecast");

    section("forecast skill on days 62..90 (truth contains the theta jump)");
    let crps_honest = honest.mean_crps("infections", &future_truth);
    let crps_oracle = oracle.mean_crps("infections", &future_truth);
    let pit_honest = pit_uniformity_statistic(&honest.pits("infections", &future_truth), 5);
    let widths = [24, 12, 14];
    println!(
        "{}",
        row(
            &["forecast", "mean_CRPS", "PIT_chi2(4)"].map(String::from),
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "day-61 posterior".into(),
                format!("{crps_honest:.1}"),
                format!("{pit_honest:.1}"),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "oracle theta=0.40".into(),
                format!("{crps_oracle:.1}"),
                "-".into(),
            ],
            &widths
        )
    );
    println!(
        "regime-change penalty: CRPS ratio {:.1}x (the cost of not re-calibrating)",
        crps_honest / crps_oracle.max(1e-9)
    );

    // (c) re-calibrate with the fourth window and verify the repaired
    // posterior forecasts the tail better.
    let plan4 = WindowPlan::paper(scenario.horizon);
    let res4 = make_calibrator()
        .run(&Priors::paper(), &observed, &plan4)
        .expect("calibration");
    section("after re-calibrating on window [62, 90]");
    println!(
        "posterior theta: day-61 {:.3} -> day-90 {:.3}  (truth after jump: 0.40)",
        res3.final_posterior().mean_theta(0),
        res4.final_posterior().mean_theta(0)
    );

    // CSV artifact: honest forecast band vs truth.
    let (days, lo, med, hi) = honest.band("infections", 0.05, 0.95);
    let table = Table::from_pairs(vec![
        ("day", days.iter().map(|&d| d as f64).collect()),
        ("true_cases", future_truth.clone()),
        ("forecast_q05", lo),
        ("forecast_q50", med),
        ("forecast_q95", hi),
    ]);
    let path = args.out_dir.join("forecast_day61.csv");
    table.write_csv(&path).expect("write csv");
    println!("\nwrote {}", path.display());
}
