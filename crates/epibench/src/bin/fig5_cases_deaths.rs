//! Regenerates **Figure 5**: sequential calibration using reported cases
//! *and* deaths (Section V-C), and checks the paper's headline comparison
//! against Figure 4 — adding the death stream reduces posterior
//! uncertainty.
//!
//! Runs both configurations (cases-only and cases+deaths) at identical
//! settings and prints the credible-interval-width reduction.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::diagnostics::{coverage, PosteriorSummary, Ribbon};
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{CalibrationResult, ObservedData, Priors, SequentialCalibrator};
use epismc_core::window::WindowPlan;

fn run(
    simulator: &CovidSimulator,
    args: &Args,
    observed: &ObservedData,
    plan: &WindowPlan,
) -> CalibrationResult {
    let calibrator = SequentialCalibrator::new(
        simulator,
        args.config(),
        vec![JitterKernel::symmetric(0.10, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.06, 0.05, 1.0),
    );
    calibrator
        .run(&Priors::paper(), observed, plan)
        .expect("calibration")
}

fn main() {
    let args = Args::parse();
    let scenario = args.scenario();
    let plan = WindowPlan::paper(scenario.horizon);
    println!(
        "fig5: cases+deaths vs cases-only on '{}', {} windows, {} x {} per window",
        scenario.name,
        plan.len(),
        args.n_params,
        args.n_replicates
    );

    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");

    let obs_cases =
        ObservedData::cases_only_with(truth.observed_cases.clone(), args.bias_mode, 1.0);
    let obs_both = ObservedData::cases_and_deaths_with(
        truth.observed_cases.clone(),
        truth.deaths.clone(),
        args.bias_mode,
        1.0,
    );

    let started = std::time::Instant::now();
    let res_cases = run(&simulator, &args, &obs_cases, &plan);
    let res_both = run(&simulator, &args, &obs_both, &plan);
    println!(
        "done in {:.1}s (both runs)",
        started.elapsed().as_secs_f64()
    );

    // --- Fig 5b: per-window posteriors under both data configurations. ---
    section("per-window posterior vs truth  [Fig 5b]");
    let widths = [10, 9, 9, 9, 9, 9, 9, 8];
    println!(
        "{}",
        row(
            &[
                "window",
                "th_cases",
                "th_both",
                "th_true",
                "rho_cases",
                "rho_both",
                "rho_true",
                "sd_ratio"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut trace_rows: Vec<[f64; 8]> = Vec::new();
    for (wc, wb) in res_cases.windows.iter().zip(&res_both.windows) {
        let tc = PosteriorSummary::of_theta(&wc.posterior, 0);
        let tb = PosteriorSummary::of_theta(&wb.posterior, 0);
        let rc = PosteriorSummary::of_rho(&wc.posterior);
        let rb = PosteriorSummary::of_rho(&wb.posterior);
        let th_true = truth.theta_truth[(wc.window.start - 1) as usize];
        let rho_true = truth.rho_truth[(wc.window.start - 1) as usize];
        // < 1 means deaths tightened the theta posterior in this window.
        let sd_ratio = tb.sd / tc.sd.max(1e-12);
        println!(
            "{}",
            row(
                &[
                    format!("[{},{}]", wc.window.start, wc.window.end),
                    format!("{:.3}", tc.mean),
                    format!("{:.3}", tb.mean),
                    format!("{th_true:.3}"),
                    format!("{:.3}", rc.mean),
                    format!("{:.3}", rb.mean),
                    format!("{rho_true:.3}"),
                    format!("{sd_ratio:.2}"),
                ],
                &widths
            )
        );
        trace_rows.push([
            wc.window.start as f64,
            tc.mean,
            tb.mean,
            th_true,
            rc.mean,
            rb.mean,
            rho_true,
            sd_ratio,
        ]);
    }

    // --- Fig 5a: ribbons under cases+deaths; width comparison. ---
    let lo = plan.windows()[0].start;
    let hi = plan.horizon();
    let span = |v: &[f64]| -> Vec<f64> { (lo..=hi).map(|d| v[(d - 1) as usize]).collect() };
    let obs_span = span(&truth.observed_cases);
    let true_span = span(&truth.true_cases);
    let death_span = span(&truth.deaths);

    let rep_cases =
        Ribbon::from_ensemble_reported(res_cases.final_posterior(), "infections", lo, hi)
            .expect("ribbon");
    let rep_both = Ribbon::from_ensemble_reported(res_both.final_posterior(), "infections", lo, hi)
        .expect("ribbon");
    let act_both =
        Ribbon::from_ensemble(res_both.final_posterior(), "infections", lo, hi).expect("ribbon");
    let deaths_both =
        Ribbon::from_ensemble(res_both.final_posterior(), "deaths", lo, hi).expect("ribbon");

    section("uncertainty reduction from adding deaths  [Fig 5a vs Fig 4a]");
    println!(
        "reported-case 90% ribbon width: cases-only {:.0}, cases+deaths {:.0}  (ratio {:.2})",
        rep_cases.mean_width_90(),
        rep_both.mean_width_90(),
        rep_both.mean_width_90() / rep_cases.mean_width_90().max(1e-12)
    );
    println!(
        "coverage (cases+deaths): reported {:.2}, actual {:.2}, deaths {:.2}",
        coverage(&rep_both, &obs_span),
        coverage(&act_both, &true_span),
        coverage(&deaths_both, &death_span)
    );

    // --- CSV artifacts. ---
    let days: Vec<f64> = (lo..=hi).map(|d| d as f64).collect();
    let rib_table = Table::from_pairs(vec![
        ("day", days),
        ("observed_cases", obs_span),
        ("true_cases", true_span),
        ("deaths", death_span),
        ("reported_q05", rep_both.q05.clone()),
        ("reported_q50", rep_both.q50.clone()),
        ("reported_q95", rep_both.q95.clone()),
        ("actual_q05", act_both.q05.clone()),
        ("actual_q50", act_both.q50.clone()),
        ("actual_q95", act_both.q95.clone()),
        ("deaths_q05", deaths_both.q05.clone()),
        ("deaths_q50", deaths_both.q50.clone()),
        ("deaths_q95", deaths_both.q95.clone()),
        ("cases_only_reported_q05", rep_cases.q05.clone()),
        ("cases_only_reported_q95", rep_cases.q95.clone()),
    ]);
    let rib_path = args.out_dir.join("fig5_ribbons.csv");
    rib_table.write_csv(&rib_path).expect("write csv");

    let trace_table = Table::from_pairs(vec![
        ("window_start", trace_rows.iter().map(|r| r[0]).collect()),
        ("theta_cases", trace_rows.iter().map(|r| r[1]).collect()),
        ("theta_both", trace_rows.iter().map(|r| r[2]).collect()),
        ("theta_true", trace_rows.iter().map(|r| r[3]).collect()),
        ("rho_cases", trace_rows.iter().map(|r| r[4]).collect()),
        ("rho_both", trace_rows.iter().map(|r| r[5]).collect()),
        ("rho_true", trace_rows.iter().map(|r| r[6]).collect()),
        ("theta_sd_ratio", trace_rows.iter().map(|r| r[7]).collect()),
    ]);
    let trace_path = args.out_dir.join("fig5_parameter_trace.csv");
    trace_table.write_csv(&trace_path).expect("write csv");
    println!(
        "\nwrote {} and {}",
        rib_path.display(),
        trace_path.display()
    );
}
