//! Regenerates **Figure 4**: sequential calibration across four time
//! windows using reported case counts only (Section V-B).
//!
//! * Fig 4a — posterior credible ribbons (50% and 90%) on reported cases
//!   and on the *unobserved actual* cases, with the truth overlaid.
//! * Fig 4b — per-window joint posterior of `(theta, rho)`: KDE mode,
//!   50%/90% HDR levels, and the truth marker.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::diagnostics::{coverage, joint_density, PosteriorSummary, Ribbon};
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator};
use epismc_core::window::WindowPlan;

fn main() {
    let args = Args::parse();
    let scenario = args.scenario();
    let config = args.config();
    let plan = WindowPlan::paper(scenario.horizon);
    println!(
        "fig4: sequential calibration (cases only) on '{}', {} windows, {} x {} per window",
        scenario.name,
        plan.len(),
        config.n_params,
        config.n_replicates
    );

    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed =
        ObservedData::cases_only_with(truth.observed_cases.clone(), args.bias_mode, config.sigma);
    // The paper: symmetric uniform jitter for theta, asymmetric (skewed
    // toward higher reporting) for rho.
    let calibrator = SequentialCalibrator::new(
        &simulator,
        config,
        vec![JitterKernel::symmetric(0.10, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.06, 0.05, 1.0),
    );
    let started = std::time::Instant::now();
    let result = calibrator
        .run(&Priors::paper(), &observed, &plan)
        .expect("calibration");
    println!("done in {:.1}s", started.elapsed().as_secs_f64());

    // --- Fig 4b: parameter trace per window vs truth. ---
    section("per-window posterior of (theta, rho) vs truth  [Fig 4b]");
    let widths = [10, 8, 8, 8, 8, 8, 8, 6, 8];
    println!(
        "{}",
        row(
            &[
                "window", "th_mean", "th_sd", "th_true", "rho_mean", "rho_sd", "rho_true", "ESS%",
                "uniq"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut trace_rows: Vec<[f64; 7]> = Vec::new();
    for w in &result.windows {
        let th = PosteriorSummary::of_theta(&w.posterior, 0);
        let rh = PosteriorSummary::of_rho(&w.posterior);
        let th_true = truth.theta_truth[(w.window.start - 1) as usize];
        let rho_true = truth.rho_truth[(w.window.start - 1) as usize];
        let ess_pct = 100.0 * w.ess / (w.posterior.len().max(1) as f64);
        println!(
            "{}",
            row(
                &[
                    format!("[{},{}]", w.window.start, w.window.end),
                    format!("{:.3}", th.mean),
                    format!("{:.3}", th.sd),
                    format!("{th_true:.3}"),
                    format!("{:.3}", rh.mean),
                    format!("{:.3}", rh.sd),
                    format!("{rho_true:.3}"),
                    format!("{ess_pct:.0}"),
                    format!("{}", w.unique_ancestors),
                ],
                &widths
            )
        );
        trace_rows.push([
            w.window.start as f64,
            th.mean,
            th.sd,
            th_true,
            rh.mean,
            rh.sd,
            rho_true,
        ]);
    }

    // KDE contour levels per window (the 2-d contour panels).
    section("joint (theta, rho) KDE per window: mode and HDR levels");
    for w in &result.windows {
        let jd = joint_density(&w.posterior, 0, Some(((0.05, 0.8), (0.0, 1.0))), 80);
        let (mx, my) = jd.grid.mode();
        println!(
            "window [{}, {}]: mode (theta {:.3}, rho {:.3}), level50 {:.2}, level90 {:.2}, corr(theta,rho) {:+.2}",
            w.window.start, w.window.end, mx, my, jd.level50, jd.level90,
            w.posterior.corr_theta_rho(0)
        );
    }

    // --- Fig 4a: ribbons on reported and actual cases over the full span. ---
    let final_post = result.final_posterior();
    let lo = plan.windows()[0].start;
    let hi = plan.horizon();
    let reported =
        Ribbon::from_ensemble_reported(final_post, "infections", lo, hi).expect("ribbon");
    let actual = Ribbon::from_ensemble(final_post, "infections", lo, hi).expect("ribbon");

    section("credible ribbons vs truth  [Fig 4a]");
    let obs_span: Vec<f64> = (lo..=hi)
        .map(|d| truth.observed_cases[(d - 1) as usize])
        .collect();
    let true_span: Vec<f64> = (lo..=hi)
        .map(|d| truth.true_cases[(d - 1) as usize])
        .collect();
    println!(
        "reported cases: 90% coverage {:.2}, mean 90% width {:.0}",
        coverage(&reported, &obs_span),
        reported.mean_width_90()
    );
    println!(
        "actual (unobserved) cases: 90% coverage {:.2}, mean 90% width {:.0}",
        coverage(&actual, &true_span),
        actual.mean_width_90()
    );
    println!(
        "actual-case median above reported median (reporting < 1): {}",
        actual
            .q50
            .iter()
            .zip(&reported.q50)
            .filter(|(a, r)| a >= r)
            .count()
    );

    // --- CSV artifacts. ---
    let days: Vec<f64> = (lo..=hi).map(|d| d as f64).collect();
    let rib_table = Table::from_pairs(vec![
        ("day", days),
        ("observed_cases", obs_span),
        ("true_cases", true_span),
        ("reported_q05", reported.q05),
        ("reported_q25", reported.q25),
        ("reported_q50", reported.q50),
        ("reported_q75", reported.q75),
        ("reported_q95", reported.q95),
        ("actual_q05", actual.q05),
        ("actual_q25", actual.q25),
        ("actual_q50", actual.q50),
        ("actual_q75", actual.q75),
        ("actual_q95", actual.q95),
    ]);
    let rib_path = args.out_dir.join("fig4_ribbons.csv");
    rib_table.write_csv(&rib_path).expect("write csv");

    let trace_table = Table::from_pairs(vec![
        ("window_start", trace_rows.iter().map(|r| r[0]).collect()),
        ("theta_mean", trace_rows.iter().map(|r| r[1]).collect()),
        ("theta_sd", trace_rows.iter().map(|r| r[2]).collect()),
        ("theta_true", trace_rows.iter().map(|r| r[3]).collect()),
        ("rho_mean", trace_rows.iter().map(|r| r[4]).collect()),
        ("rho_sd", trace_rows.iter().map(|r| r[5]).collect()),
        ("rho_true", trace_rows.iter().map(|r| r[6]).collect()),
    ]);
    let trace_path = args.out_dir.join("fig4_parameter_trace.csv");
    trace_table.write_csv(&trace_path).expect("write csv");

    // Posterior samples per window for external contour plotting.
    let mut sample_cols: Vec<(String, Vec<f64>)> = Vec::new();
    for (k, w) in result.windows.iter().enumerate() {
        sample_cols.push((format!("w{k}_theta"), w.posterior.thetas(0)));
        sample_cols.push((format!("w{k}_rho"), w.posterior.rhos()));
    }
    let min_len = sample_cols.iter().map(|(_, c)| c.len()).min().unwrap_or(0);
    let samples_table = Table::from_pairs(
        sample_cols
            .iter()
            .map(|(n, c)| (n.as_str(), c[..min_len].to_vec()))
            .collect(),
    );
    let samples_path = args.out_dir.join("fig4_posterior_samples.csv");
    samples_table.write_csv(&samples_path).expect("write csv");

    println!(
        "\nwrote {}, {}, {}",
        rib_path.display(),
        trace_path.display(),
        samples_path.display()
    );
}
