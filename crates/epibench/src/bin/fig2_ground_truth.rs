//! Regenerates **Figure 2**: the simulated ground truth of Section V-A.
//!
//! Runs the COVID model with the paper's time-varying transmission rate
//! (0.30 / 0.27 / 0.25 / 0.40 switching at days 34 / 48 / 62), thins the
//! true case counts with the time-varying reporting probability
//! (0.60 / 0.70 / 0.85 / 0.80), and prints/writes the daily series the
//! figure plots: true infections, observed (reported) cases, and deaths.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};

fn main() {
    let args = Args::parse();
    let scenario = args.scenario();
    println!(
        "fig2: scenario '{}' (population {}, horizon {} days, truth seed {})",
        scenario.name, scenario.base_params.population, scenario.horizon, scenario.truth_seed
    );
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);

    section("daily series (every 5th day)");
    let widths = [4, 10, 10, 8, 7, 6];
    println!(
        "{}",
        row(
            &["day", "true", "observed", "deaths", "theta", "rho"].map(String::from),
            &widths
        )
    );
    for d in (0..truth.horizon() as usize).step_by(5) {
        println!(
            "{}",
            row(
                &[
                    format!("{}", d + 1),
                    format!("{:.0}", truth.true_cases[d]),
                    format!("{:.0}", truth.observed_cases[d]),
                    format!("{:.0}", truth.deaths[d]),
                    format!("{:.2}", truth.theta_truth[d]),
                    format!("{:.2}", truth.rho_truth[d]),
                ],
                &widths
            )
        );
    }

    section("summary");
    let total_true: f64 = truth.true_cases.iter().sum();
    let total_obs: f64 = truth.observed_cases.iter().sum();
    let total_deaths: f64 = truth.deaths.iter().sum();
    println!("total true infections : {total_true:.0}");
    println!("total observed cases  : {total_obs:.0}");
    println!("total deaths          : {total_deaths:.0}");
    println!(
        "realized reporting    : {:.3} (schedule range 0.60-0.85)",
        truth.realized_reporting_fraction()
    );
    // The theta jump at day 62 should re-accelerate the epidemic: compare
    // mean daily cases in the two weeks before vs after the jump.
    let before: f64 = truth.true_cases[47..61].iter().sum::<f64>() / 14.0;
    let after: f64 = truth.true_cases[69..83].iter().sum::<f64>() / 14.0;
    println!("mean daily cases d48-61: {before:.1}");
    println!("mean daily cases d70-83: {after:.1} (post theta=0.40 jump)");

    let days: Vec<f64> = (1..=truth.horizon() as usize).map(|d| d as f64).collect();
    let table = Table::from_pairs(vec![
        ("day", days),
        ("true_cases", truth.true_cases.clone()),
        ("observed_cases", truth.observed_cases.clone()),
        ("deaths", truth.deaths.clone()),
        ("hospital_census", truth.hospital_census.clone()),
        ("icu_census", truth.icu_census.clone()),
        ("theta_truth", truth.theta_truth.clone()),
        ("rho_truth", truth.rho_truth.clone()),
    ]);
    let path = args.out_dir.join("fig2_ground_truth.csv");
    table.write_csv(&path).expect("write csv");
    println!("\nwrote {}", path.display());
}
