//! Regenerates the paper's **HPC claims** (Sections I and III-B):
//!
//! 1. **Strong scaling** — one calibration window's trajectory ensemble is
//!    embarrassingly parallel; wall time vs thread count.
//! 2. **Checkpoint savings** — restarting window `m` from a checkpoint
//!    costs O(window) simulation days, while replaying from day 0 costs
//!    O(elapsed); the gap grows with epidemic length.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::simulator::{CovidSimulator, TrajectorySimulator};
use epismc_core::sis::{ObservedData, Priors, SingleWindowIs};
use epismc_core::window::TimeWindow;
use std::time::Instant;

fn main() {
    let mut args = Args::parse();
    // Scaling runs use a smaller grid by default so each point is quick.
    if args.n_params == Args::default().n_params {
        args.n_params = 300;
        args.n_replicates = 8;
        args.resample_size = 500;
    }
    let scenario = args.scenario();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);

    // --- 1. Strong scaling. ---
    section("strong scaling of one SIS window");
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }
    println!(
        "ensemble: {} x {} trajectories to day {}, machine has {max_threads} cores",
        args.n_params, args.n_replicates, window.end
    );
    let widths = [8, 10, 10, 12];
    println!(
        "{}",
        row(
            &["threads", "time_s", "speedup", "efficiency%"].map(String::from),
            &widths
        )
    );
    let mut base_time = 0.0f64;
    let mut scaling_rows: Vec<[f64; 4]> = Vec::new();
    for &t in &thread_counts {
        let mut cfg = args.config();
        cfg.threads = Some(t);
        let driver = SingleWindowIs::new(&simulator, cfg);
        let start = Instant::now();
        let res = driver
            .run(&Priors::paper(), &observed, window)
            .expect("calibration");
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(res.posterior.len());
        if t == 1 {
            base_time = secs;
        }
        let speedup = base_time / secs;
        let eff = 100.0 * speedup / t as f64;
        println!(
            "{}",
            row(
                &[
                    format!("{t}"),
                    format!("{secs:.2}"),
                    format!("{speedup:.2}"),
                    format!("{eff:.0}"),
                ],
                &widths
            )
        );
        scaling_rows.push([t as f64, secs, speedup, eff]);
    }

    // --- 2. Checkpoint restart vs full replay. ---
    section("checkpoint restart vs replay-from-day-0");
    // Continue a single trajectory across successive windows both ways and
    // time the simulation cost per window.
    let theta = vec![0.3];
    let reps = 40u64;
    let widths = [12, 14, 12, 9];
    println!(
        "{}",
        row(
            &["window_end", "checkpoint_ms", "replay_ms", "savings"].map(String::from),
            &widths
        )
    );
    let mut ck_rows: Vec<[f64; 4]> = Vec::new();
    let boundaries = [33u32, 47, 61, 90, 120, 180];
    for (i, &end) in boundaries.iter().enumerate().skip(1) {
        let prev = boundaries[i - 1];
        // Checkpoint path: run to prev once, then time continuations.
        let (_, ck) = simulator.run_fresh(&theta, 1, prev).expect("run");
        let start = Instant::now();
        for r in 0..reps {
            std::hint::black_box(simulator.run_from(&ck, &theta, r, end).expect("run"));
        }
        let ck_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        // Replay path: from day 0 to end each time.
        let start = Instant::now();
        for r in 0..reps {
            std::hint::black_box(simulator.run_fresh(&theta, r, end).expect("run"));
        }
        let replay_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let savings = replay_ms / ck_ms.max(1e-9);
        println!(
            "{}",
            row(
                &[
                    format!("{end}"),
                    format!("{ck_ms:.2}"),
                    format!("{replay_ms:.2}"),
                    format!("{savings:.1}x"),
                ],
                &widths
            )
        );
        ck_rows.push([end as f64, ck_ms, replay_ms, savings]);
    }
    println!(
        "(savings grow with elapsed epidemic length: checkpoint cost is O(window), replay is O(elapsed))"
    );

    let scale_table = Table::from_pairs(vec![
        ("threads", scaling_rows.iter().map(|r| r[0]).collect()),
        ("seconds", scaling_rows.iter().map(|r| r[1]).collect()),
        ("speedup", scaling_rows.iter().map(|r| r[2]).collect()),
        (
            "efficiency_pct",
            scaling_rows.iter().map(|r| r[3]).collect(),
        ),
    ]);
    let p1 = args.out_dir.join("scaling_threads.csv");
    scale_table.write_csv(&p1).expect("write csv");

    let ck_table = Table::from_pairs(vec![
        ("window_end", ck_rows.iter().map(|r| r[0]).collect()),
        ("checkpoint_ms", ck_rows.iter().map(|r| r[1]).collect()),
        ("replay_ms", ck_rows.iter().map(|r| r[2]).collect()),
        ("savings_factor", ck_rows.iter().map(|r| r[3]).collect()),
    ]);
    let p2 = args.out_dir.join("scaling_checkpoint.csv");
    ck_table.write_csv(&p2).expect("write csv");
    println!("\nwrote {} and {}", p1.display(), p2.display());
}
