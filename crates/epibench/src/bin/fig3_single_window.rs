//! Regenerates **Figure 3**: single-window importance sampling calibrated
//! to reported case counts only (Section V-B, first window, days 20–33).
//!
//! Emits the three panels' numbers:
//! * left — prior vs posterior trajectory envelopes over the window,
//! * center — prior vs posterior distribution of `rho`,
//! * right — prior vs posterior distribution of `theta`.
//!
//! Pass `--bias-mode mean` for the conditional-mean thinning ablation.

use epibench::{row, section, Args};
use epidata::{generate_ground_truth, io::Table};
use epismc_core::diagnostics::{coverage, PosteriorSummary, Ribbon};
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SingleWindowIs};
use epismc_core::window::TimeWindow;
use epistats::summary::Histogram;

fn main() {
    let args = Args::parse();
    let scenario = args.scenario();
    let mut config = args.config();
    config.keep_prior_ensemble = true;
    let window = TimeWindow::new(20, 33);
    println!(
        "fig3: single-window IS on '{}', window [{}, {}], {} x {} trajectories, resample {}",
        scenario.name,
        window.start,
        window.end,
        config.n_params,
        config.n_replicates,
        config.resample_size
    );

    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed =
        ObservedData::cases_only_with(truth.observed_cases.clone(), args.bias_mode, config.sigma);
    let started = std::time::Instant::now();
    let result = SingleWindowIs::new(&simulator, config)
        .run(&Priors::paper(), &observed, window)
        .expect("calibration");
    println!(
        "done in {:.1}s  (ESS {:.1}, unique ancestors {}, log marginal {:.1})",
        started.elapsed().as_secs_f64(),
        result.ess,
        result.unique_ancestors,
        result.log_marginal
    );

    // --- Right panel: theta prior vs posterior. ---
    section("theta: prior U(0.1, 0.5) vs posterior");
    // The kept candidate ensemble carries importance weights; the prior
    // panels need the *unweighted* draws, so reset to uniform.
    let prior = {
        let mut p = result.prior_ensemble.clone().expect("kept");
        p.set_uniform_weights();
        p
    };
    let prior = &prior;
    let post_theta = PosteriorSummary::of_theta(&result.posterior, 0);
    let prior_theta = PosteriorSummary::of_theta(prior, 0);
    let true_theta = truth.theta_truth[(window.start - 1) as usize];
    print_summary("prior ", &prior_theta);
    print_summary("post  ", &post_theta);
    println!(
        "truth  : {true_theta:.3}  (covered by 90% CI: {})",
        post_theta.covers(true_theta)
    );
    println!(
        "sd shrinkage: {:.3} -> {:.3} ({:.1}x)",
        prior_theta.sd,
        post_theta.sd,
        prior_theta.sd / post_theta.sd
    );

    // --- Center panel: rho prior vs posterior. ---
    section("rho: prior Beta(4, 1) vs posterior");
    let post_rho = PosteriorSummary::of_rho(&result.posterior);
    let prior_rho = PosteriorSummary::of_rho(prior);
    let true_rho = truth.rho_truth[(window.start - 1) as usize];
    print_summary("prior ", &prior_rho);
    print_summary("post  ", &post_rho);
    println!(
        "truth  : {true_rho:.3}  (covered by 90% CI: {})",
        post_rho.covers(true_rho)
    );
    println!(
        "note: the paper observes rho is less constrained than theta under the strong Beta(4,1) prior"
    );

    // --- Left panel: trajectory envelopes. ---
    section("trajectory envelope on the window (reported scale)");
    let prior_rib = Ribbon::from_ensemble_reported(prior, "infections", window.start, window.end)
        .expect("ribbon");
    let post_rib =
        Ribbon::from_ensemble_reported(&result.posterior, "infections", window.start, window.end)
            .expect("ribbon");
    let widths = [4, 10, 20, 20];
    println!(
        "{}",
        row(
            &["day", "observed", "prior[q05,q95]", "post[q05,q95]"].map(String::from),
            &widths
        )
    );
    for (i, &day) in post_rib.days.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    format!("{day}"),
                    format!("{:.0}", truth.observed_cases[(day - 1) as usize]),
                    format!("[{:.0}, {:.0}]", prior_rib.q05[i], prior_rib.q95[i]),
                    format!("[{:.0}, {:.0}]", post_rib.q05[i], post_rib.q95[i]),
                ],
                &widths
            )
        );
    }
    let window_obs: Vec<f64> = (window.start..=window.end)
        .map(|d| truth.observed_cases[(d - 1) as usize])
        .collect();
    println!(
        "posterior envelope narrower: prior width {:.0} -> posterior width {:.0}; \
         90% coverage of observed: {:.2}",
        prior_rib.mean_width_90(),
        post_rib.mean_width_90(),
        coverage(&post_rib, &window_obs)
    );

    // --- Histograms (the empirical posterior histograms of the figure). ---
    let theta_hist = histogram(&result.posterior.thetas(0), 0.1, 0.5, 20);
    let rho_hist = histogram(&result.posterior.rhos(), 0.0, 1.0, 20);
    let prior_theta_hist = histogram(&prior.thetas(0), 0.1, 0.5, 20);
    let prior_rho_hist = histogram(&prior.rhos(), 0.0, 1.0, 20);

    let table = Table::from_pairs(vec![
        ("theta_bin", theta_hist.0.clone()),
        ("theta_prior_density", prior_theta_hist.1),
        ("theta_post_density", theta_hist.1),
        ("rho_bin", rho_hist.0.clone()),
        ("rho_prior_density", prior_rho_hist.1),
        ("rho_post_density", rho_hist.1),
    ]);
    let path = args.out_dir.join("fig3_param_histograms.csv");
    table.write_csv(&path).expect("write csv");

    let rib_table = Table::from_pairs(vec![
        ("day", post_rib.days.iter().map(|&d| d as f64).collect()),
        ("observed", window_obs),
        ("prior_q05", prior_rib.q05),
        ("prior_q95", prior_rib.q95),
        ("post_q05", post_rib.q05),
        ("post_q25", post_rib.q25),
        ("post_q50", post_rib.q50),
        ("post_q75", post_rib.q75),
        ("post_q95", post_rib.q95),
    ]);
    let rib_path = args.out_dir.join("fig3_trajectory_ribbon.csv");
    rib_table.write_csv(&rib_path).expect("write csv");
    println!("\nwrote {} and {}", path.display(), rib_path.display());
}

fn print_summary(label: &str, s: &PosteriorSummary) {
    println!(
        "{label}: mean {:.3}  sd {:.3}  [q05 {:.3}, q50 {:.3}, q95 {:.3}]",
        s.mean, s.sd, s.q05, s.q50, s.q95
    );
}

/// Equal-width histogram returning (bin centers, densities).
fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<f64>) {
    let mut h = Histogram::new(lo, hi, bins);
    for &x in xs {
        h.add(x);
    }
    (h.centers(), h.densities())
}
