//! CI gate over the strong-scaling bench: parses
//! `BENCH_strong_scaling.json` (emitted by
//! `cargo bench -p epibench --bench bench_strong_scaling`), computes
//! parallel efficiency `eff(t) = mean(1) / (t * mean(t))`, and fails
//! when the 4-thread point drops below the floor.
//!
//! Usage: `check_scaling [path-to-json]` (default:
//! `BENCH_strong_scaling.json` in the current directory).
//!
//! Environment:
//! - `SCALING_FLOOR`: efficiency floor at the gated thread count
//!   (default `0.70`).
//!
//! The gate is hardware-aware: on hosts with fewer than 4 cores a
//! 4-thread efficiency number measures oversubscription, not scaling,
//! so the gate reports and exits 0. Thread points beyond 4 (the
//! 8-thread sweep on larger runners) are recorded for trend data but
//! never gated.
//!
//! Independent of the gate, the checker shouts about two capture
//! artifacts that would otherwise be recorded silently: superlinear
//! efficiency (> 1.05 — the 1-thread baseline was itself slowed down
//! by a noisy host) and non-monotonic timings (more threads taking
//! *longer* — oversubscription or a polluted run). Either means the
//! JSON should be re-recorded on a quiet machine, not trusted.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Gated thread count: paper-scale CI runners all expose >= 4 cores.
const GATE_THREADS: usize = 4;

/// Efficiency above this is flagged as superlinear: fixed-work sweeps
/// with bit-identical results can't genuinely beat perfect scaling, so
/// anything past measurement slack (5%) means a polluted baseline.
const SUPERLINEAR_EFF: f64 = 1.05;

#[derive(serde::Deserialize)]
struct Summary {
    suite: String,
    benchmarks: Vec<Bench>,
}

#[derive(serde::Deserialize)]
struct Bench {
    name: String,
    mean_ns: f64,
    /// Total timed iterations behind the mean. Older captures predate
    /// the field; they default to 0 and are rejected below — a mean of
    /// one (or an unknown number of) iterations of a multi-second
    /// calibration is a noise sample, not a measurement.
    #[serde(default)]
    iterations: u64,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_scaling: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_strong_scaling.json".into());
    let floor: f64 = match std::env::var("SCALING_FLOOR") {
        Ok(v) => match v.trim().parse() {
            Ok(f) => f,
            Err(_) => return fail(&format!("SCALING_FLOOR {v:?} is not a number")),
        },
        Err(_) => 0.70,
    };

    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let summary: Summary = match serde_json::from_str(&raw) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot parse {path}: {e}")),
    };
    if summary.suite != "strong_scaling" {
        return fail(&format!(
            "{path} holds suite {:?}, expected \"strong_scaling\"",
            summary.suite
        ));
    }

    // Collect "strong_scaling/window/<t>" points, rejecting any point
    // whose mean rests on fewer than 2 iterations: single-shot timings
    // of second-scale calibrations carry whole-percent scheduler noise,
    // which is exactly the magnitude the efficiency gate resolves.
    let mut means: BTreeMap<usize, f64> = BTreeMap::new();
    for b in &summary.benchmarks {
        if let Some(t) = b.name.strip_prefix("strong_scaling/window/") {
            if let Ok(t) = t.parse::<usize>() {
                if b.iterations < 2 {
                    return fail(&format!(
                        "point {:?} was measured over {} iteration(s); captures need >= 2 \
                         per point — re-record with the current bench harness",
                        b.name, b.iterations
                    ));
                }
                means.insert(t, b.mean_ns);
            }
        }
    }
    let Some(&serial) = means.get(&1) else {
        return fail(&format!("{path} has no 1-thread baseline point"));
    };
    if !(serial.is_finite() && serial > 0.0) {
        return fail(&format!("1-thread mean {serial} is not a positive time"));
    }

    println!("strong scaling ({path}):");
    println!("  threads      mean        speedup   efficiency");
    let mut gate_eff: Option<f64> = None;
    let mut warnings: Vec<String> = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    for (&t, &mean) in &means {
        let speedup = serial / mean;
        let eff = speedup / t as f64;
        println!(
            "  {t:>7}  {:>10.1} ms  {speedup:>7.2}x  {:>9.1}%",
            mean / 1e6,
            eff * 100.0
        );
        if t == GATE_THREADS {
            gate_eff = Some(eff);
        }
        // Capture-quality checks. Superlinear efficiency cannot come
        // from this fixed-work sweep (results are bit-identical across
        // thread counts); it means the 1-thread baseline itself ran
        // slow, so every efficiency number derived from it is inflated.
        if t > 1 && eff > SUPERLINEAR_EFF {
            warnings.push(format!(
                "efficiency {:.1}% at {t} threads is superlinear (> {:.0}%) — the 1-thread \
                 baseline was likely polluted; re-record on a quiet host",
                eff * 100.0,
                SUPERLINEAR_EFF * 100.0
            ));
        }
        // Adding workers to fixed work must not make it slower. When it
        // does, the sweep measured oversubscription or host noise, not
        // scaling, and the file should not be trusted as trend data.
        if let Some((pt, pm)) = prev {
            if mean > pm {
                warnings.push(format!(
                    "non-monotonic timings: {t} threads ({:.1} ms) slower than {pt} threads \
                     ({:.1} ms) — oversubscribed or polluted capture; re-record on a quiet host",
                    mean / 1e6,
                    pm / 1e6
                ));
            }
        }
        prev = Some((t, mean));
    }
    for w in &warnings {
        eprintln!("check_scaling: WARNING: {w}");
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < GATE_THREADS {
        println!(
            "gate skipped: host has {cores} core(s) < {GATE_THREADS}; a {GATE_THREADS}-thread \
             point here measures oversubscription, not scaling"
        );
        return ExitCode::SUCCESS;
    }
    let Some(eff) = gate_eff else {
        return fail(&format!(
            "{path} has no {GATE_THREADS}-thread point to gate"
        ));
    };
    if eff < floor {
        return fail(&format!(
            "parallel efficiency {:.1}% at {GATE_THREADS} threads is below the {:.0}% floor",
            eff * 100.0,
            floor * 100.0
        ));
    }
    println!(
        "gate passed: {:.1}% efficiency at {GATE_THREADS} threads (floor {:.0}%)",
        eff * 100.0,
        floor * 100.0
    );
    ExitCode::SUCCESS
}
