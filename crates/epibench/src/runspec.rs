//! Declarative run specifications for the `calibrate` CLI binary.
//!
//! A JSON file fully describes a calibration campaign — scenario,
//! ensemble sizes, windows, data sources, jitter kernels, optional
//! adaptive refinement — so operational re-runs ("new week of data
//! arrived") are a config edit, not a code change.

use epidata::Scenario;
use epismc_core::adaptive::AdaptiveConfig;
use epismc_core::config::CalibrationConfig;
use epismc_core::prior::JitterKernel;
use epismc_core::window::{TimeWindow, WindowPlan};
use serde::{Deserialize, Serialize};

/// Which observed data streams to calibrate against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SourceSpec {
    /// Reported case counts only (paper Section V-B).
    Cases,
    /// Cases plus death counts (paper Section V-C).
    CasesDeaths,
}

/// Jitter-kernel settings for the sequential proposal.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct JitterSpec {
    /// Symmetric half-width for theta.
    pub theta_half: f64,
    /// Downward half-width for rho.
    pub rho_down: f64,
    /// Upward half-width for rho.
    pub rho_up: f64,
}

impl Default for JitterSpec {
    fn default() -> Self {
        Self {
            theta_half: 0.10,
            rho_down: 0.05,
            rho_up: 0.06,
        }
    }
}

/// A complete declarative calibration campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSpec {
    /// Scenario scale name (`tiny` / `small` / `full`).
    #[serde(default = "default_scale")]
    pub scale: String,
    /// Calibration settings.
    #[serde(default)]
    pub calibration: CalibrationConfig,
    /// Inclusive `[start, end]` day pairs, strictly ordered.
    #[serde(default = "default_windows")]
    pub windows: Vec<(u32, u32)>,
    /// Data streams to score against.
    #[serde(default = "default_sources")]
    pub sources: SourceSpec,
    /// Proposal jitter settings.
    #[serde(default)]
    pub jitter: JitterSpec,
    /// Optional adaptive ESS-triggered refinement.
    #[serde(default)]
    pub adaptive: Option<AdaptiveConfig>,
    /// Output directory for CSV artifacts.
    #[serde(default = "default_out")]
    pub out_dir: String,
}

fn default_scale() -> String {
    "small".into()
}
fn default_windows() -> Vec<(u32, u32)> {
    vec![(20, 33), (34, 47), (48, 61), (62, 90)]
}
fn default_sources() -> SourceSpec {
    SourceSpec::Cases
}
fn default_out() -> String {
    "results/calibrate".into()
}

impl Default for RunSpec {
    fn default() -> Self {
        Self {
            scale: default_scale(),
            calibration: CalibrationConfig::default(),
            windows: default_windows(),
            sources: default_sources(),
            jitter: JitterSpec::default(),
            adaptive: None,
            out_dir: default_out(),
        }
    }
}

impl RunSpec {
    /// Parse from a JSON string.
    ///
    /// # Errors
    /// Returns parse and validation errors.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let spec: Self = serde_json::from_str(json).map_err(|e| e.to_string())?;
        spec.validate()?;
        Ok(spec)
    }

    /// Validate semantic constraints beyond the type structure.
    ///
    /// # Errors
    /// Returns the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.calibration.validate()?;
        if self.windows.is_empty() {
            return Err("runspec: no windows".into());
        }
        for &(a, b) in &self.windows {
            if a > b {
                return Err(format!("runspec: inverted window [{a}, {b}]"));
            }
        }
        for pair in self.windows.windows(2) {
            if pair[1].0 <= pair[0].1 {
                return Err("runspec: windows must be strictly ordered".into());
            }
        }
        let scen = self.scenario()?;
        if self.windows.last().expect("non-empty").1 > scen.horizon {
            return Err("runspec: window beyond scenario horizon".into());
        }
        if !(self.jitter.theta_half > 0.0 && self.jitter.rho_down > 0.0 && self.jitter.rho_up > 0.0)
        {
            return Err("runspec: jitter half-widths must be positive".into());
        }
        if let Some(a) = &self.adaptive {
            a.validate()?;
        }
        Ok(())
    }

    /// Resolve the scenario.
    ///
    /// # Errors
    /// Returns an error for unknown scale names.
    pub fn scenario(&self) -> Result<Scenario, String> {
        match self.scale.as_str() {
            "tiny" => Ok(Scenario::paper_tiny()),
            "small" => Ok(Scenario::paper_small()),
            "full" => Ok(Scenario::paper_full()),
            other => Err(format!("unknown scale '{other}'")),
        }
    }

    /// Build the window plan.
    pub fn window_plan(&self) -> WindowPlan {
        WindowPlan::new(
            self.windows
                .iter()
                .map(|&(a, b)| TimeWindow::new(a, b))
                .collect(),
        )
    }

    /// Build the jitter kernels `(theta, rho)`.
    pub fn kernels(&self) -> (Vec<JitterKernel>, JitterKernel) {
        (
            vec![JitterKernel::symmetric(self.jitter.theta_half, 0.05, 0.8)],
            JitterKernel::asymmetric(self.jitter.rho_down, self.jitter.rho_up, 0.05, 1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        let spec = RunSpec::default();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.window_plan().len(), 4);
    }

    #[test]
    fn json_round_trip_and_partial_configs() {
        // A minimal config relies on defaults.
        let spec = RunSpec::from_json(r#"{}"#).unwrap();
        assert_eq!(spec.scale, "small");
        assert_eq!(spec.sources, SourceSpec::Cases);
        // A partial override.
        let spec = RunSpec::from_json(
            r#"{
                "scale": "tiny",
                "sources": "cases_deaths",
                "windows": [[10, 20], [21, 40]],
                "calibration": {
                    "n_params": 50, "n_replicates": 2, "resample_size": 100,
                    "seed": 5, "sigma": 1.0, "threads": null,
                    "keep_prior_ensemble": false
                },
                "adaptive": {
                    "max_iterations": 2, "target_ess_fraction": 0.1,
                    "jitter_decay": 0.8
                }
            }"#,
        )
        .unwrap();
        assert_eq!(spec.scale, "tiny");
        assert_eq!(spec.sources, SourceSpec::CasesDeaths);
        assert_eq!(spec.calibration.n_params, 50);
        assert!(spec.adaptive.is_some());
        // Full serde round trip.
        let json = serde_json::to_string(&spec).unwrap();
        let back = RunSpec::from_json(&json).unwrap();
        assert_eq!(back.windows, spec.windows);
    }

    #[test]
    fn rejects_bad_windows() {
        assert!(RunSpec::from_json(r#"{"windows": []}"#).is_err());
        assert!(RunSpec::from_json(r#"{"windows": [[10, 5]]}"#).is_err());
        assert!(RunSpec::from_json(r#"{"windows": [[5, 10], [10, 20]]}"#).is_err());
        assert!(RunSpec::from_json(r#"{"windows": [[5, 500]]}"#).is_err());
    }

    #[test]
    fn rejects_unknown_scale() {
        assert!(RunSpec::from_json(r#"{"scale": "galactic"}"#).is_err());
    }

    #[test]
    fn kernels_reflect_jitter_spec() {
        let spec = RunSpec::from_json(
            r#"{"jitter": {"theta_half": 0.2, "rho_down": 0.01, "rho_up": 0.09}}"#,
        )
        .unwrap();
        let (kt, kr) = spec.kernels();
        assert!((kt[0].down - 0.2).abs() < 1e-12);
        assert!((kr.down - 0.01).abs() < 1e-12);
        assert!((kr.up - 0.09).abs() < 1e-12);
    }
}
