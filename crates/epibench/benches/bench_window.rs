//! End-to-end cost of one SIS calibration window (Algorithm 1) — the
//! unit of work the paper parallelizes on HPC — serial vs parallel, and
//! the sequential continuation step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidata::{generate_ground_truth, Scenario};
use episim::output::{DailySeries, SharedTrajectory};
use epismc_core::config::CalibrationConfig;
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator, SingleWindowIs};
use epismc_core::window::{TimeWindow, WindowPlan};
use std::hint::black_box;

fn config(threads: Option<usize>) -> CalibrationConfig {
    let mut b = CalibrationConfig::builder()
        .n_params(64)
        .n_replicates(4)
        .resample_size(128)
        .seed(11);
    if let Some(t) = threads {
        b = b.threads(t);
    }
    b.build()
}

fn bench_single_window(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("single_window_is");
    group.sample_size(10);
    group.bench_function("serial_1thread", |b| {
        let driver = SingleWindowIs::new(&simulator, config(Some(1)));
        b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
    });
    group.bench_function("parallel_default", |b| {
        let driver = SingleWindowIs::new(&simulator, config(None));
        b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
    });
    group.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let plan = WindowPlan::paper(scenario.horizon);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("sequential_calibration");
    group.sample_size(10);
    group.bench_function("four_windows", |b| {
        let calibrator = SequentialCalibrator::new(
            &simulator,
            config(None),
            vec![JitterKernel::symmetric(0.1, 0.05, 0.8)],
            JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
        );
        b.iter(|| black_box(calibrator.run(&priors, &observed, &plan).unwrap()));
    });
    group.finish();
}

/// One simulated window's worth of output (7 days, 2 series) starting at
/// absolute day `start`.
fn window_segment(start: u32) -> DailySeries {
    let mut s = DailySeries::new(vec!["infections".into(), "deaths".into()], start);
    for d in 0..7u64 {
        s.push_day(&[100 + d, d / 3]);
    }
    s
}

/// The storage cost the trajectory refactor targets: continuing one
/// particle lineage across many windows. Owned storage re-copies the
/// whole history every window (`O(history)` per continuation); shared
/// storage appends one `Arc` segment (`O(window)`), so its per-window
/// cost stays flat as the history deepens.
fn bench_trajectory_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory_growth");
    for n_windows in [5u32, 20, 80] {
        let flat_bytes = u64::from(n_windows) * 7 * 2 * 8;
        group.throughput(Throughput::Bytes(flat_bytes));
        group.bench_function(BenchmarkId::new("shared_append", n_windows), |b| {
            b.iter(|| {
                let mut t = SharedTrajectory::root(window_segment(0));
                for w in 1..n_windows {
                    t = t.append(window_segment(7 * w));
                }
                black_box(t.len())
            });
        });
        group.bench_function(BenchmarkId::new("owned_clone_extend", n_windows), |b| {
            b.iter(|| {
                let mut t = window_segment(0);
                for w in 1..n_windows {
                    // The pre-refactor continuation path: clone the full
                    // ancestor history, then extend by one window.
                    let mut next = t.clone();
                    next.extend(&window_segment(7 * w));
                    t = next;
                }
                black_box(t.len())
            });
        });
    }
    group.finish();
}

/// Ensemble-scale memory: 128 particles continued from 8 shared ancestors
/// across many windows. Prints the unique-bytes footprint shared storage
/// holds vs what per-particle flat storage would, then times a full read
/// (flatten) of every member to show reads stay cheap.
fn bench_ensemble_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_sharing");
    for n_windows in [5u32, 20, 80] {
        // 8 ancestor lineages, each continued window by window; 128
        // particles reference them 16:1 (the resampling pattern).
        let mut ancestors: Vec<SharedTrajectory> = (0..8)
            .map(|_| SharedTrajectory::root(window_segment(0)))
            .collect();
        for w in 1..n_windows {
            for a in &mut ancestors {
                *a = a.append(window_segment(7 * w));
            }
        }
        let ensemble: Vec<SharedTrajectory> = (0..128).map(|i| ancestors[i % 8].clone()).collect();

        let mut unique = std::collections::HashSet::new();
        let mut shared_bytes = 0usize;
        for t in &ensemble {
            for (id, bytes) in t.segment_footprint() {
                if unique.insert(id) {
                    shared_bytes += bytes;
                }
            }
        }
        let flat_bytes: usize = ensemble.iter().map(SharedTrajectory::flat_bytes).sum();
        println!(
            "ensemble_sharing/{n_windows} windows: unique {shared_bytes} B vs flat {flat_bytes} B ({:.1}x)",
            flat_bytes as f64 / shared_bytes as f64
        );

        group.throughput(Throughput::Bytes(flat_bytes as u64));
        group.bench_function(BenchmarkId::new("flatten_all", n_windows), |b| {
            b.iter(|| {
                let total: usize = ensemble.iter().map(|t| black_box(t.flatten().len())).sum();
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_window,
    bench_sequential,
    bench_trajectory_growth,
    bench_ensemble_sharing
);
criterion_main!(benches);
