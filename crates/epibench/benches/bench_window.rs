//! End-to-end cost of one SIS calibration window (Algorithm 1) — the
//! unit of work the paper parallelizes on HPC — serial vs parallel, and
//! the sequential continuation step.

use criterion::{criterion_group, criterion_main, Criterion};
use epidata::{generate_ground_truth, Scenario};
use epismc_core::config::CalibrationConfig;
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SequentialCalibrator, SingleWindowIs};
use epismc_core::window::{TimeWindow, WindowPlan};
use std::hint::black_box;

fn config(threads: Option<usize>) -> CalibrationConfig {
    let mut b = CalibrationConfig::builder()
        .n_params(64)
        .n_replicates(4)
        .resample_size(128)
        .seed(11);
    if let Some(t) = threads {
        b = b.threads(t);
    }
    b.build()
}

fn bench_single_window(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("single_window_is");
    group.sample_size(10);
    group.bench_function("serial_1thread", |b| {
        let driver = SingleWindowIs::new(&simulator, config(Some(1)));
        b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
    });
    group.bench_function("parallel_default", |b| {
        let driver = SingleWindowIs::new(&simulator, config(None));
        b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
    });
    group.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let plan = WindowPlan::paper(scenario.horizon);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("sequential_calibration");
    group.sample_size(10);
    group.bench_function("four_windows", |b| {
        let calibrator = SequentialCalibrator::new(
            &simulator,
            config(None),
            vec![JitterKernel::symmetric(0.1, 0.05, 0.8)],
            JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
        );
        b.iter(|| black_box(calibrator.run(&priors, &observed, &plan).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_single_window, bench_sequential);
criterion_main!(benches);
