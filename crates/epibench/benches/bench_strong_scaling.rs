//! Strong-scaling gate bench: one SIS window at the paper's full grid
//! *shape* — 25,000 parameter tuples x 20 replicates = 500,000 cells —
//! on a scaled-down SEIR model, swept over worker counts 1 → max.
//!
//! Fixed work, varying threads: the classic strong-scaling experiment.
//! Results are bit-identical across the sweep (pinned by
//! `tests/determinism_parallel.rs`), so only wall-clock moves. The
//! emitted `BENCH_strong_scaling.json` is consumed by
//! `check_scaling` (see `crates/epibench/src/bin/check_scaling.rs`),
//! which computes parallel efficiency
//! `eff(t) = mean(1) / (t * mean(t))` and fails CI below the floor.
//!
//! Thread points: 1 always; 2, 4, and 8 only when the host actually
//! exposes that many cores. A point above the core count measures
//! oversubscription, not scaling — recording it poisons the capture
//! with the exact non-monotonic noise `check_scaling` warns about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim::seir::SeirParams;
use epismc_core::config::CalibrationConfig;
use epismc_core::observation::BiasMode;
use epismc_core::prior::{BetaPrior, UniformPrior};
use epismc_core::simulator::{SeirSimulator, TrajectorySimulator};
use epismc_core::sis::{ObservedData, Priors, SingleWindowIs};
use epismc_core::window::TimeWindow;
use std::hint::black_box;

const N_PARAMS: usize = 25_000;
const N_REPS: usize = 20;

fn config(threads: usize) -> CalibrationConfig {
    CalibrationConfig::builder()
        .n_params(N_PARAMS)
        .n_replicates(N_REPS)
        .resample_size(2_000)
        .seed(99)
        .threads(threads)
        .build()
}

fn bench_strong_scaling(c: &mut Criterion) {
    let simulator = SeirSimulator::new(SeirParams {
        population: 200,
        initial_exposed: 4,
        ..SeirParams::default()
    })
    .unwrap();
    let window = TimeWindow::new(3, 8);
    let (truth, _) = simulator.run_fresh(&[0.5], 31, window.end).unwrap();
    let observed =
        ObservedData::cases_only_with(truth.series_f64("infections").unwrap(), BiasMode::Mean, 1.0);
    let priors = Priors {
        theta: vec![Box::new(UniformPrior::new(0.1, 0.9))],
        rho: Box::new(BetaPrior::new(100.0, 1.0)),
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut threads = vec![1usize];
    threads.extend([2usize, 4, 8].into_iter().filter(|&t| t <= cores));

    let mut group = c.benchmark_group("strong_scaling");
    group.sample_size(10);
    for t in threads {
        group.bench_function(BenchmarkId::new("window", t), |b| {
            let driver = SingleWindowIs::new(&simulator, config(t));
            b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strong_scaling);
criterion_main!(benches);
