//! Simulator stepper throughput: the three stochastic integrators on the
//! same model specs, across population scales (the stepper-fidelity/cost
//! ablation of DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim::covid::{CovidModel, CovidParams};
use episim::engine::{
    BinomialChainStepper, CompiledSpec, GillespieStepper, StepScratch, Stepper, TauLeapStepper,
};
use episim::seir::{SeirModel, SeirParams};
use episim::state::SimState;
use std::hint::black_box;

/// One simulated day, averaged over a 30-day horizon from a fixed state
/// (restored each iteration so work per iteration is stable).
fn bench_days<S: Stepper>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    model: &CompiledSpec,
    stepper: &S,
    init: &SimState,
) {
    let n_flows = model.spec.flows.len();
    // State and scratch are reused across iterations (rehydrated in
    // place), matching the pooled-workspace hot path of the parallel
    // grid: steady-state iterations allocate nothing.
    let mut st = init.clone();
    let mut scratch = StepScratch::new();
    let mut flows = vec![0u64; n_flows];
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter(|| {
            st.assign_from(init);
            flows.iter_mut().for_each(|f| *f = 0);
            for _ in 0..30 {
                stepper.advance_day(model, &mut st, &mut flows, &mut scratch);
            }
            black_box(st.total_population())
        });
    });
}

fn bench_seir_steppers(c: &mut Criterion) {
    let mut group = c.benchmark_group("seir_30days");
    for pop in [1_000u64, 20_000] {
        let m = SeirModel::new(SeirParams {
            population: pop,
            initial_exposed: pop / 100,
            ..SeirParams::default()
        })
        .unwrap();
        let model = CompiledSpec::new(m.spec()).unwrap();
        let init = m.initial_state(1);
        bench_days(
            &mut group,
            &format!("chain_pop{pop}"),
            &model,
            &BinomialChainStepper::daily(),
            &init,
        );
        bench_days(
            &mut group,
            &format!("tau4_pop{pop}"),
            &model,
            &TauLeapStepper::new(4),
            &init,
        );
        // Gillespie cost grows with event count; only the small population.
        if pop <= 1_000 {
            bench_days(
                &mut group,
                &format!("gillespie_pop{pop}"),
                &model,
                &GillespieStepper::new(),
                &init,
            );
        }
    }
    group.finish();
}

fn bench_covid_steppers(c: &mut Criterion) {
    let mut group = c.benchmark_group("covid_30days");
    for pop in [200_000u64, 2_700_000] {
        let m = CovidModel::new(CovidParams {
            population: pop,
            initial_exposed: pop / 1_000,
            ..CovidParams::default()
        })
        .unwrap();
        let model = CompiledSpec::new(m.spec()).unwrap();
        let init = m.initial_state(1);
        bench_days(
            &mut group,
            &format!("chain_pop{pop}"),
            &model,
            &BinomialChainStepper::daily(),
            &init,
        );
        bench_days(
            &mut group,
            &format!("tau4_pop{pop}"),
            &model,
            &TauLeapStepper::new(4),
            &init,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_seir_steppers, bench_covid_steppers);
criterion_main!(benches);
