//! Weighting cost: Gaussian sqrt-scale likelihood evaluation and the full
//! `score_window` path (bias thinning + likelihood) for both bias modes.

use criterion::{criterion_group, criterion_main, Criterion};
use episim::output::{DailySeries, SharedTrajectory};
use epismc_core::likelihood::{GaussianSqrtLikelihood, Likelihood};
use epismc_core::observation::BiasMode;
use epismc_core::sis::{score_window, ObservedData};
use epismc_core::window::TimeWindow;
use std::hint::black_box;

fn trajectory(days: usize, level: u64) -> SharedTrajectory {
    let mut t = DailySeries::new(vec!["infections".into(), "deaths".into()], 1);
    for d in 0..days {
        t.push_day(&[level + d as u64, (d / 10) as u64]);
    }
    SharedTrajectory::root(t)
}

fn bench_gaussian(c: &mut Criterion) {
    let l = GaussianSqrtLikelihood::paper();
    let y: Vec<f64> = (0..14).map(|d| 100.0 + d as f64).collect();
    let eta: Vec<f64> = (0..14).map(|d| 95.0 + 1.1 * d as f64).collect();
    c.bench_function("gaussian_sqrt_14days", |b| {
        b.iter(|| black_box(l.log_likelihood(black_box(&y), black_box(&eta))));
    });
}

fn bench_score_window(c: &mut Criterion) {
    let traj = trajectory(33, 200);
    let window = TimeWindow::new(20, 33);
    let mut group = c.benchmark_group("score_window");
    for (label, mode) in [("sampled", BiasMode::Sampled), ("mean", BiasMode::Mean)] {
        let obs =
            ObservedData::cases_only_with((0..33).map(|d| 150.0 + d as f64).collect(), mode, 1.0);
        group.bench_function(format!("cases_{label}"), |b| {
            b.iter(|| black_box(score_window(black_box(&traj), 0.75, 99, &obs, window).unwrap()));
        });
    }
    let obs_both =
        ObservedData::cases_and_deaths((0..33).map(|d| 150.0 + d as f64).collect(), vec![1.0; 33]);
    group.bench_function("cases_and_deaths_sampled", |b| {
        b.iter(|| black_box(score_window(black_box(&traj), 0.75, 99, &obs_both, window).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_gaussian, bench_score_window);
criterion_main!(benches);
