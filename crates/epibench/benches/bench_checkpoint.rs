//! Checkpoint machinery cost and the paper's core efficiency claim:
//! serialize/restore round-trips, and continuation-from-checkpoint vs
//! replay-from-day-0 for growing elapsed horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use episim::checkpoint::SimCheckpoint;
use epismc_core::simulator::{CovidSimulator, TrajectorySimulator};
use epidata::Scenario;
use std::hint::black_box;

fn simulator() -> CovidSimulator {
    CovidSimulator::new(Scenario::paper_tiny().base_params).unwrap()
}

fn bench_serialization(c: &mut Criterion) {
    let sim = simulator();
    let (_, ck) = sim.run_fresh(&[0.3], 1, 40).unwrap();
    let bytes = ck.to_bytes();
    let mut group = c.benchmark_group("checkpoint_codec");
    group.bench_function("to_bytes", |b| {
        b.iter(|| black_box(ck.to_bytes()));
    });
    group.bench_function("from_bytes", |b| {
        b.iter(|| black_box(SimCheckpoint::from_bytes(&bytes).unwrap()));
    });
    group.bench_function("json_round_trip", |b| {
        b.iter(|| {
            let s = serde_json::to_string(&ck).unwrap();
            black_box(serde_json::from_str::<SimCheckpoint>(&s).unwrap())
        });
    });
    group.finish();
}

fn bench_restart_vs_replay(c: &mut Criterion) {
    let sim = simulator();
    let mut group = c.benchmark_group("restart_vs_replay");
    group.sample_size(20);
    // A 14-day continuation window after `elapsed` days of history.
    for elapsed in [33u32, 61, 120] {
        let (_, ck) = sim.run_fresh(&[0.3], 1, elapsed).unwrap();
        group.bench_function(BenchmarkId::new("checkpoint", elapsed), |b| {
            b.iter(|| black_box(sim.run_from(&ck, &[0.35], 2, elapsed + 14).unwrap()));
        });
        group.bench_function(BenchmarkId::new("replay", elapsed), |b| {
            b.iter(|| black_box(sim.run_fresh(&[0.35], 2, elapsed + 14).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serialization, bench_restart_vs_replay);
criterion_main!(benches);
