//! Checkpoint machinery cost and the paper's core efficiency claim:
//! serialize/restore round-trips, and continuation-from-checkpoint vs
//! replay-from-day-0 for growing elapsed horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epidata::Scenario;
use episim::checkpoint::SimCheckpoint;
use epismc_core::simulator::{CovidSimulator, TrajectorySimulator};
use std::hint::black_box;

fn simulator() -> CovidSimulator {
    CovidSimulator::new(Scenario::paper_tiny().base_params).unwrap()
}

fn bench_serialization(c: &mut Criterion) {
    let sim = simulator();
    let (_, ck) = sim.run_fresh(&[0.3], 1, 40).unwrap();
    let bytes = ck.to_bytes();
    let mut group = c.benchmark_group("checkpoint_codec");
    group.bench_function("to_bytes", |b| {
        b.iter(|| black_box(ck.to_bytes()));
    });
    group.bench_function("from_bytes", |b| {
        b.iter(|| black_box(SimCheckpoint::from_bytes(&bytes).unwrap()));
    });
    group.bench_function("json_round_trip", |b| {
        b.iter(|| {
            let s = serde_json::to_string(&ck).unwrap();
            black_box(serde_json::from_str::<SimCheckpoint>(&s).unwrap())
        });
    });
    group.finish();
}

fn bench_restart_vs_replay(c: &mut Criterion) {
    let sim = simulator();
    let mut group = c.benchmark_group("restart_vs_replay");
    group.sample_size(20);
    // A 14-day continuation window after `elapsed` days of history.
    for elapsed in [33u32, 61, 120] {
        let (_, ck) = sim.run_fresh(&[0.3], 1, elapsed).unwrap();
        group.bench_function(BenchmarkId::new("checkpoint", elapsed), |b| {
            b.iter(|| black_box(sim.run_from(&ck, &[0.35], 2, elapsed + 14).unwrap()));
        });
        group.bench_function(BenchmarkId::new("replay", elapsed), |b| {
            b.iter(|| black_box(sim.run_fresh(&[0.35], 2, elapsed + 14).unwrap()));
        });
    }
    group.finish();
}

/// The full sequential continuation step as the calibrator performs it:
/// simulate 14 days from a checkpoint, then attach the new window to the
/// ancestor's history. With shared storage the attach is an `O(window)`
/// `Arc` append regardless of how deep the history is; the owned
/// variant re-copies all `elapsed` days first.
fn bench_continuation_with_history(c: &mut Criterion) {
    use episim::output::SharedTrajectory;
    let sim = simulator();
    let mut group = c.benchmark_group("continuation_with_history");
    group.sample_size(20);
    for elapsed in [33u32, 61, 120] {
        let (history, ck) = sim.run_fresh(&[0.3], 1, elapsed).unwrap();
        let shared_history = SharedTrajectory::root(history.clone());
        group.bench_function(BenchmarkId::new("shared", elapsed), |b| {
            b.iter(|| {
                let (tail, _) = sim.run_from(&ck, &[0.35], 2, elapsed + 14).unwrap();
                black_box(shared_history.append(tail).len())
            });
        });
        group.bench_function(BenchmarkId::new("owned", elapsed), |b| {
            b.iter(|| {
                let (tail, _) = sim.run_from(&ck, &[0.35], 2, elapsed + 14).unwrap();
                let mut t = history.clone();
                t.extend(&tail);
                black_box(t.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_serialization,
    bench_restart_vs_replay,
    bench_continuation_with_history
);
criterion_main!(benches);
