//! Statistical-substrate cost: KDE evaluation (the Fig 4b/5b contour
//! grids), GP emulator fit/predict (the surrogate screen), weighted
//! quantiles (ribbon construction), and CRPS scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epistats::gp::GpEmulator;
use epistats::kde::{Kde1d, Kde2d};
use epistats::rng::Xoshiro256PlusPlus;
use epistats::score::crps;
use epistats::summary::weighted_quantile;
use std::hint::black_box;

fn samples(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let xs: Vec<f64> = (0..n).map(|_| 0.3 + 0.05 * rng.next_f64()).collect();
    let ys: Vec<f64> = (0..n).map(|_| 0.7 + 0.1 * rng.next_f64()).collect();
    let ws: Vec<f64> = (0..n).map(|_| rng.next_f64() + 0.01).collect();
    (xs, ys, ws)
}

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde");
    for n in [500usize, 2_000] {
        let (xs, ys, ws) = samples(n, 1);
        group.bench_function(BenchmarkId::new("kde2d_grid40", n), |b| {
            let kde = Kde2d::new(&xs, &ys, Some(&ws));
            b.iter(|| black_box(kde.grid((0.1, 0.5), (0.4, 1.0), 40, 40)));
        });
        group.bench_function(BenchmarkId::new("kde1d_grid200", n), |b| {
            let kde = Kde1d::new(&xs, Some(&ws));
            b.iter(|| black_box(kde.grid(0.1, 0.5, 200)));
        });
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    group.sample_size(10);
    for n in [50usize, 150] {
        let mut rng = Xoshiro256PlusPlus::new(2);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.next_f64(), rng.next_f64()])
            .collect();
        let y: Vec<f64> = x.iter().map(|xi| (5.0 * xi[0]).sin() + xi[1]).collect();
        group.bench_function(BenchmarkId::new("fit_auto", n), |b| {
            b.iter(|| black_box(GpEmulator::fit_auto(x.clone(), &y).unwrap()));
        });
        let gp = GpEmulator::fit_auto(x.clone(), &y).unwrap();
        group.bench_function(BenchmarkId::new("predict", n), |b| {
            b.iter(|| black_box(gp.predict(black_box(&[0.4, 0.6]))));
        });
    }
    group.finish();
}

fn bench_summaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("summaries");
    let (xs, _, ws) = samples(10_000, 3);
    group.bench_function("weighted_quantile_10k", |b| {
        b.iter(|| black_box(weighted_quantile(&xs, &ws, black_box(0.9))));
    });
    let ens: Vec<f64> = xs[..500].to_vec();
    group.bench_function("crps_500", |b| {
        b.iter(|| black_box(crps(&ens, black_box(0.32), None)));
    });
    group.finish();
}

criterion_group!(benches, bench_kde, bench_gp, bench_summaries);
criterion_main!(benches);
