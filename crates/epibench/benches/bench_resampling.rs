//! Resampling scheme cost across ensemble sizes (the paper resamples
//! 10,000 from 500,000 weighted trajectories).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epismc_core::resample::{Multinomial, Resampler, Residual, Stratified, Systematic};
use epistats::rng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn weights(n: usize) -> Vec<f64> {
    // A realistic skewed weight profile: exponential decay with a heavy
    // head, like a post-likelihood importance-weight vector.
    (0..n)
        .map(|i| (-(i as f64) / (n as f64 / 8.0)).exp() + 1e-9)
        .collect()
}

fn bench_resamplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("resample");
    for &n in &[1_000usize, 10_000, 100_000] {
        let w = weights(n);
        let draw = n / 5;
        group.throughput(Throughput::Elements(draw as u64));
        let schemes: Vec<Box<dyn Resampler>> = vec![
            Box::new(Multinomial),
            Box::new(Systematic),
            Box::new(Stratified),
            Box::new(Residual),
        ];
        for s in schemes {
            group.bench_function(BenchmarkId::new(s.name(), n), |b| {
                let mut rng = Xoshiro256PlusPlus::new(42);
                b.iter(|| black_box(s.resample(&w, draw, &mut rng)));
            });
        }
    }
    group.finish();
}

/// The paper-scale shape: draw 10k of 500k.
fn bench_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("resample_paper_scale");
    group.sample_size(10);
    let w = weights(500_000);
    group.bench_function("multinomial_10k_of_500k", |b| {
        let mut rng = Xoshiro256PlusPlus::new(7);
        b.iter(|| black_box(Multinomial.resample(&w, 10_000, &mut rng)));
    });
    group.bench_function("systematic_10k_of_500k", |b| {
        let mut rng = Xoshiro256PlusPlus::new(8);
        b.iter(|| black_box(Systematic.resample(&w, 10_000, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_resamplers, bench_paper_scale);
criterion_main!(benches);
