//! End-to-end throughput gate: a ten-window persisted calibration of
//! the paper's scenario (every-window checkpoint policy, durable
//! fsync-per-snapshot store), run synchronously vs. pipelined, swept
//! over worker counts 1 → host cores.
//!
//! This is the bench the pipelining tentpole answers to. The two modes
//! compute bit-identical posteriors (asserted here before any timing),
//! so the only difference the sweep can show is *when* durability costs
//! are paid: `Sync` stalls the window loop for every encode + fsync +
//! rename, `Pipelined` overlaps them with the next window's simulation.
//! The emitted `BENCH_e2e.json` is consumed by `scripts/check_bench.sh`,
//! which fails when the pipelined run stops being at least
//! `E2E_SPEEDUP_PCT` (default 20) percent faster than the sync run on
//! the same thread count — a self-relative gate, so it holds on any
//! host whose storage has nonzero sync latency. The two modes are
//! timed with `bench_pair` (alternating rounds) so drifting background
//! load on a shared host cannot land one mode in a slow phase and the
//! other in a fast one.
//!
//! Bench names: `e2e/<mode>/<threads>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epidata::{generate_ground_truth, Scenario};
use epismc_core::config::{CalibrationConfig, CheckpointPolicy, PersistMode};
use epismc_core::error::SmcError;
use epismc_core::persist::{DirStore, RunStore};
use epismc_core::prior::JitterKernel;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{CalibrationResult, ObservedData, Priors, SequentialCalibrator};
use epismc_core::window::{TimeWindow, WindowPlan};
use std::hint::black_box;
use std::path::PathBuf;

const N_PARAMS: usize = 96;
const N_REPS: usize = 2;
// Snapshot bytes come from the per-particle rows (theta/rho/seed/weight
// per resampled particle) plus the interned unique-ancestor pool, so a
// record lands around a quarter megabyte — one fsync per window costs
// milliseconds, comparable to the window's simulation grid, which is
// exactly the regime the pipelined writer exists for.
const RESAMPLE: usize = 4096;

/// Modeled persistence round-trip latency on top of the local fsync.
///
/// The paper's calibrations run on HPC clusters whose run stores live
/// on shared parallel filesystems (or an object store), where the ack
/// for one durable snapshot costs a few milliseconds of *latency* —
/// not CPU — beyond what a local NVMe fsync shows. Benching against
/// raw local fsync (~1-3 ms, heavily load-dependent) makes the
/// sync-vs-pipelined ratio a lottery on the host's ambient load;
/// adding a fixed, deterministic latency per committed record restores
/// the deployment regime this gate is supposed to protect and makes
/// the capture reproducible. The wait sits on whichever thread calls
/// `RunStore::put` — the window loop under `Sync`, the background
/// writer under `Pipelined` — which is exactly the asymmetry the gate
/// measures.
const STORE_LAG: std::time::Duration = std::time::Duration::from_millis(3);

/// A [`DirStore`] that models a remote store's commit latency: every
/// successful put pays [`STORE_LAG`] after the local fsync + rename.
struct LagStore {
    inner: DirStore,
}

impl LagStore {
    fn open(root: &PathBuf) -> Self {
        Self {
            inner: DirStore::open(root).unwrap(),
        }
    }
}

impl RunStore for LagStore {
    fn put(&self, window: u32, record: &[u8]) -> Result<(), SmcError> {
        self.inner.put(window, record)?;
        std::thread::sleep(STORE_LAG);
        Ok(())
    }

    fn get(&self, window: u32) -> Result<Option<Vec<u8>>, SmcError> {
        self.inner.get(window)
    }

    fn list(&self) -> Result<Vec<u32>, SmcError> {
        self.inner.list()
    }

    fn delete(&self, window: u32) -> Result<(), SmcError> {
        self.inner.delete(window)
    }
}

/// Weekly data drops over the scenario's 90-day horizon: ten windows,
/// ten durable snapshots. More windows per unit of simulation work
/// raises the share of wall-clock spent on durability, and amortizes the
/// one fsync (the last) that pipelining can never hide.
fn plan() -> WindowPlan {
    WindowPlan::new(
        (0..10)
            .map(|w| TimeWindow::new(20 + 7 * w, 26 + 7 * w))
            .collect(),
    )
}

fn config(threads: usize) -> CalibrationConfig {
    CalibrationConfig::builder()
        .n_params(N_PARAMS)
        .n_replicates(N_REPS)
        .resample_size(RESAMPLE)
        .seed(909)
        .threads(threads)
        .build()
}

fn calibrator(
    simulator: &CovidSimulator,
    threads: usize,
) -> SequentialCalibrator<'_, CovidSimulator> {
    SequentialCalibrator::new(
        simulator,
        config(threads),
        vec![JitterKernel::symmetric(0.08, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
    )
}

fn store_root(mode: PersistMode, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("bench_e2e_{mode:?}_{threads}"))
}

fn run_once(
    simulator: &CovidSimulator,
    observed: &ObservedData,
    mode: PersistMode,
    threads: usize,
) -> CalibrationResult {
    let root = store_root(mode, threads);
    let store = LagStore::open(&root);
    calibrator(simulator, threads)
        .run_persisted(
            &Priors::paper(),
            observed,
            &plan(),
            &store,
            &CheckpointPolicy::every_window().with_mode(mode),
        )
        .unwrap()
}

fn posterior_bits(result: &CalibrationResult) -> Vec<Vec<(u64, u64, u64)>> {
    result
        .windows
        .iter()
        .map(|w| {
            w.posterior
                .particles()
                .iter()
                .map(|p| (p.theta[0].to_bits(), p.rho.to_bits(), p.seed))
                .collect()
        })
        .collect()
}

fn bench_e2e(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut threads = vec![1usize];
    threads.extend([2usize, 4, 8].into_iter().filter(|&t| t <= cores));

    // Pipelining must never change what is computed — only when the
    // durability cost is paid. Pin bit-identity across every mode and
    // thread shape before any timing happens.
    let reference = run_once(&simulator, &observed, PersistMode::Sync, 1);
    let want = posterior_bits(&reference);
    for &t in &threads {
        for mode in [PersistMode::Sync, PersistMode::Pipelined] {
            let got = run_once(&simulator, &observed, mode, t);
            assert_eq!(
                posterior_bits(&got),
                want,
                "{mode:?} at {t} threads diverged from the sync single-thread reference"
            );
            for (g, w) in got.windows.iter().zip(&reference.windows) {
                assert_eq!(
                    g.log_marginal.to_bits(),
                    w.log_marginal.to_bits(),
                    "{mode:?} at {t} threads: log-marginal diverged"
                );
            }
        }
    }

    let mut group = c.benchmark_group("e2e");
    for &t in &threads {
        // Paired, alternating-round measurement: the gate ratios these
        // two entries, so they must sample the same host-load regime.
        group.bench_pair(
            BenchmarkId::new("sync", t),
            || black_box(run_once(&simulator, &observed, PersistMode::Sync, t)),
            BenchmarkId::new("pipelined", t),
            || black_box(run_once(&simulator, &observed, PersistMode::Pipelined, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
