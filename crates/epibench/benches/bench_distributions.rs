//! Sampler throughput across the regimes the simulator actually hits:
//! binomial (inversion vs beta-splitting paths), Poisson (direct vs
//! gamma-reduction), gamma, and normal draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epistats::dist::{sample_binomial, sample_poisson, Distribution, Gamma, Normal};
use epistats::rng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial");
    // (n, p): small-mean inversion path, large-mean splitting path, and
    // the simulator's daily S->E draw shape (huge n, tiny p).
    for (label, n, p) in [
        ("inversion_n20_p0.3", 20u64, 0.3),
        ("inversion_n1e4_p1e-3", 10_000, 0.001),
        ("split_n1e4_p0.4", 10_000, 0.4),
        ("split_n2.7e6_p3e-4", 2_700_000, 0.000_3),
        ("split_n2.7e6_p0.5", 2_700_000, 0.5),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut rng = Xoshiro256PlusPlus::new(1);
            b.iter(|| black_box(sample_binomial(&mut rng, black_box(n), black_box(p))));
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson");
    for lambda in [0.5f64, 8.0, 100.0, 10_000.0] {
        group.bench_function(BenchmarkId::from_parameter(lambda), |b| {
            let mut rng = Xoshiro256PlusPlus::new(2);
            b.iter(|| black_box(sample_poisson(&mut rng, black_box(lambda))));
        });
    }
    group.finish();
}

fn bench_continuous(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuous");
    group.bench_function("normal", |b| {
        let mut rng = Xoshiro256PlusPlus::new(3);
        b.iter(|| black_box(Normal::sample_standard(&mut rng)));
    });
    group.bench_function("gamma_shape2.5", |b| {
        let mut rng = Xoshiro256PlusPlus::new(4);
        b.iter(|| black_box(Gamma::sample_standard(&mut rng, black_box(2.5))));
    });
    group.bench_function("gamma_shape0.5", |b| {
        let mut rng = Xoshiro256PlusPlus::new(5);
        b.iter(|| black_box(Gamma::sample_standard(&mut rng, black_box(0.5))));
    });
    group.bench_function("beta_4_1", |b| {
        let d = epistats::dist::Beta::new(4.0, 1.0);
        let mut rng = Xoshiro256PlusPlus::new(6);
        b.iter(|| black_box(d.sample(&mut rng)));
    });
    group.bench_function("raw_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::new(7);
        b.iter(|| black_box(rng.next()));
    });
    group.finish();
}

criterion_group!(benches, bench_binomial, bench_poisson, bench_continuous);
criterion_main!(benches);
