//! Strong-scaling sweep over the window grid scheduler: one SIS window
//! at fixed work, varying the worker count and the scheduling chunk size
//! over the flattened `(parameter, replicate)` cell grid. Results are
//! bit-identical across the whole sweep (see
//! `tests/determinism_parallel.rs`); only wall-clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epidata::{generate_ground_truth, Scenario};
use epismc_core::config::CalibrationConfig;
use epismc_core::simulator::CovidSimulator;
use epismc_core::sis::{ObservedData, Priors, SingleWindowIs};
use epismc_core::window::TimeWindow;
use std::hint::black_box;

fn config(threads: Option<usize>, chunk_cells: Option<usize>) -> CalibrationConfig {
    let mut b = CalibrationConfig::builder()
        .n_params(64)
        .n_replicates(4)
        .resample_size(128)
        .seed(11);
    if let Some(t) = threads {
        b = b.threads(t);
    }
    if let Some(cc) = chunk_cells {
        b = b.chunk_cells(cc);
    }
    b.build()
}

/// Thread sweep at adaptive chunking: the strong-scaling curve. On a
/// single-core runner the parallel points measure scheduling overhead.
fn bench_thread_sweep(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("window", threads), |b| {
            let driver = SingleWindowIs::new(&simulator, config(Some(threads), None));
            b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
        });
    }
    group.finish();
}

/// Chunk-size sweep at the default worker count: claim-overhead (chunk 1)
/// through load-imbalance (one chunk per worker) extremes around the
/// adaptive default.
fn bench_chunk_sweep(c: &mut Criterion) {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).unwrap();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);
    let priors = Priors::paper();

    let mut group = c.benchmark_group("scaling_chunks");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("cells", "adaptive"), |b| {
        let driver = SingleWindowIs::new(&simulator, config(None, None));
        b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
    });
    for chunk in [1usize, 8, 64] {
        group.bench_function(BenchmarkId::new("cells", chunk), |b| {
            let driver = SingleWindowIs::new(&simulator, config(None, Some(chunk)));
            b.iter(|| black_box(driver.run(&priors, &observed, window).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_sweep, bench_chunk_sweep);
criterion_main!(benches);
