//! Online calibration: open a streaming calibrator over a durable
//! store, feed it observation windows as they "arrive", park it, then
//! reopen and continue — and verify the streamed posterior is
//! bit-identical to a batch run over the same windows.
//!
//! Run with: `cargo run --release --example streaming_run`

use epismc::prelude::*;

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");

    let config = CalibrationConfig::builder()
        .n_params(160)
        .n_replicates(6)
        .resample_size(320)
        .seed(11)
        // Optional: layer covariance-scaled PMMH moves over the paper's
        // uniform jitter. The default (UniformJitter) changes nothing.
        .rejuvenation(RejuvenationKernel::Pmmh(PmmhConfig::default()))
        .build();
    let jitter_theta = vec![JitterKernel::symmetric(0.10, 0.05, 0.8)];
    let jitter_rho = JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0);
    let calibrator =
        || SequentialCalibrator::new(&simulator, config.clone(), jitter_theta.clone(), jitter_rho);

    // Fortnightly windows over the scenario horizon, arriving one at a
    // time. The stream opens with only the warm-up days before the
    // first window on hand.
    let plan = WindowPlan::paper(scenario.horizon);
    let first_day = plan.windows()[0].start;
    let warmup =
        ObservedData::cases_only(truth.observed_cases[..(first_day - 1) as usize].to_vec());

    let dir = std::env::temp_dir().join(format!("epismc-streaming-run-{}", std::process::id()));
    let store = DirStore::open(&dir).expect("open store");
    let policy = CheckpointPolicy::every_window();

    let mut stream =
        StreamingCalibrator::open(calibrator(), Priors::paper(), warmup, &store, policy)
            .expect("open stream");

    // First half of the campaign: windows arrive, each append advances
    // the SIS pass and persists through the background writer.
    let half = plan.len() / 2;
    for &window in &plan.windows()[..half] {
        let arriving = ObservedSeries {
            start_day: window.start,
            values: truth.observed_cases[window.start as usize - 1..window.end as usize].to_vec(),
        };
        let result = stream.append_window(&arriving).expect("append");
        let moves = result
            .rejuvenation
            .map(|s| format!(", pmmh acceptance {:.2}", s.acceptance_rate()))
            .unwrap_or_default();
        println!(
            "window {:>2} days [{:>2}, {:>2}]  theta = {:.3} +/- {:.3}{moves}",
            stream.next_window_index() - 1,
            result.window.start,
            result.window.end,
            result.posterior.mean_theta(0),
            result.posterior.sd_theta(0),
        );
    }
    drop(stream); // the process "exits" between arrivals

    // Days later: reopen from the durable store and keep going. The
    // newest snapshot carries the full calibration state; the observed
    // data seen so far rides along (the snapshot's v5 fingerprint
    // refuses to continue on silently edited history).
    let seen = plan.windows()[half - 1].end as usize;
    let mut stream = StreamingCalibrator::open(
        calibrator(),
        Priors::paper(),
        ObservedData::cases_only(truth.observed_cases[..seen].to_vec()),
        &store,
        policy,
    )
    .expect("reopen stream");
    let report = stream.resume().expect("resumed from a snapshot");
    println!(
        "reopened at window {} ({} damaged record(s) skipped)",
        report.resumed_window, report.recoveries
    );
    for &window in &plan.windows()[half..] {
        let arriving = ObservedSeries {
            start_day: window.start,
            values: truth.observed_cases[window.start as usize - 1..window.end as usize].to_vec(),
        };
        stream.append_window(&arriving).expect("append");
    }

    // The invariant: the streamed campaign is bit-identical to a batch
    // run that saw all the data up front.
    let batch = calibrator()
        .run(
            &Priors::paper(),
            &ObservedData::cases_only(truth.observed_cases.clone()),
            &plan,
        )
        .expect("batch run");
    let streamed = stream.latest_posterior().expect("streamed posterior");
    let identical = streamed
        .particles()
        .iter()
        .zip(batch.final_posterior().particles())
        .all(|(p, q)| {
            p.theta[0].to_bits() == q.theta[0].to_bits() && p.rho.to_bits() == q.rho.to_bits()
        });
    println!(
        "streaming == batch, bit for bit: {identical} (total log marginal {:.3})",
        stream.total_log_marginal()
    );
    assert!(identical);

    std::fs::remove_dir_all(&dir).ok();
}
