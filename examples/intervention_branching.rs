//! Scenario analysis by checkpoint branching (the use case motivating the
//! paper's Discussion): calibrate up to "today", then branch every
//! posterior particle's checkpointed state under alternative futures —
//! e.g. an intervention that cuts transmission vs status quo — and
//! compare the forecast distributions probabilistically.
//!
//! Run with: `cargo run --release --example intervention_branching`

use epismc::prelude::*;
use epismc::smc::simulator::TrajectorySimulator;

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");

    // Calibrate the first two windows (through day 47 = "today").
    let plan = WindowPlan::new(vec![TimeWindow::new(20, 33), TimeWindow::new(34, 47)]);
    let config = CalibrationConfig::builder()
        .n_params(300)
        .n_replicates(6)
        .resample_size(600)
        .seed(21)
        .build();
    let calibrator = SequentialCalibrator::new(
        &simulator,
        config,
        vec![JitterKernel::symmetric(0.08, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
    );
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let result = calibrator
        .run(&Priors::paper(), &observed, &plan)
        .expect("calibration");
    let posterior = result.final_posterior();
    println!(
        "calibrated through day 47: posterior theta mean {:.3}",
        posterior.mean_theta(0)
    );

    // Branch each posterior particle 30 days forward under two futures.
    let forecast_to = 47 + 30;
    let n_branch = 150.min(posterior.len());
    let mut futures: Vec<(&str, f64, Vec<f64>)> = vec![
        ("status quo (calibrated theta)", 1.0, Vec::new()),
        ("intervention (-40% transmission)", 0.6, Vec::new()),
    ];
    for (_, multiplier, totals) in &mut futures {
        for (i, p) in posterior.particles().iter().take(n_branch).enumerate() {
            let theta = vec![p.theta[0] * *multiplier];
            let (tail, _) = simulator
                .run_from(&p.checkpoint, &theta, 5_000 + i as u64, forecast_to)
                .expect("branch");
            totals.push(tail.series("infections").unwrap().iter().sum::<u64>() as f64);
        }
        totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }

    println!("\n30-day forecast of new infections (days 48..={forecast_to}):");
    let quant = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p) as usize];
    for (label, _, totals) in &futures {
        println!(
            "  {label:35} median {:>7.0}   90% interval [{:>6.0}, {:>7.0}]",
            quant(totals, 0.5),
            quant(totals, 0.05),
            quant(totals, 0.95)
        );
    }
    // Probabilistic comparison: chance the intervention at least halves
    // the caseload relative to the status quo median.
    let sq_median = quant(&futures[0].2, 0.5);
    let frac_halved = futures[1]
        .2
        .iter()
        .filter(|&&t| t < 0.5 * sq_median)
        .count() as f64
        / futures[1].2.len() as f64;
    println!("\nP(intervention halves caseload vs status-quo median) = {frac_halved:.2}");
}
