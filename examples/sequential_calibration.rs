//! Full sequential calibration across the paper's four time windows,
//! tracking the time-varying transmission rate and reporting probability
//! (paper Figure 4), then forecasting beyond the last window from the
//! posterior checkpoints.
//!
//! Run with: `cargo run --release --example sequential_calibration`

use epismc::prelude::*;
use epismc::smc::simulator::TrajectorySimulator;

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");

    // Four windows matching the epidemic's behavioral changes.
    let plan = WindowPlan::paper(scenario.horizon);
    let config = CalibrationConfig::builder()
        .n_params(400)
        .n_replicates(8)
        .resample_size(800)
        .seed(11)
        .build();

    // Jitter kernels: symmetric for theta, asymmetric (leaning toward
    // improved reporting) for rho — the paper's Section V-B choice.
    let calibrator = SequentialCalibrator::new(
        &simulator,
        config,
        vec![JitterKernel::symmetric(0.10, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
    );
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let result = calibrator
        .run(&Priors::paper(), &observed, &plan)
        .expect("calibration");

    println!("time-varying parameter estimates (cases only):");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>9}",
        "window", "theta", "th_true", "rho", "rho_true"
    );
    for (w, th_mean, _, rho_mean, _) in result.parameter_trace() {
        println!(
            "{:>10} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            format!("[{},{}]", w.start, w.end),
            th_mean,
            truth.theta_truth[(w.start - 1) as usize],
            rho_mean,
            truth.rho_truth[(w.start - 1) as usize],
        );
    }

    // The final window's ensemble carries checkpoints at day `horizon`:
    // forecast 14 more days by continuing a handful of posterior
    // particles with their own calibrated theta.
    println!(
        "\n14-day forecast beyond day {} (posterior predictive):",
        scenario.horizon
    );
    let post = result.final_posterior();
    let horizon = scenario.horizon;
    let mut totals = Vec::new();
    for (i, p) in post.particles().iter().take(200).enumerate() {
        let (tail, _) = simulator
            .run_from(&p.checkpoint, &p.theta, 1_000 + i as u64, horizon + 14)
            .expect("forecast");
        totals.push(tail.series("infections").unwrap().iter().sum::<u64>() as f64);
    }
    totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| totals[((totals.len() - 1) as f64 * p) as usize];
    println!(
        "  cumulative new infections, days {}..{}: median {:.0}, 90% interval [{:.0}, {:.0}]",
        horizon + 1,
        horizon + 14,
        q(0.5),
        q(0.05),
        q(0.95)
    );
}
