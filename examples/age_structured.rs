//! The age-stratified "Covid-age" configuration (the simulator family the
//! paper's Section V-A draws from): three age groups with a contact
//! matrix and an age-graded severity ladder, calibrated with the same SIS
//! machinery, then used to compare **age-targeted interventions** — the
//! use case the paper's Discussion motivates (closing schools vs
//! shielding the elderly).
//!
//! Run with: `cargo run --release --example age_structured`

use epismc::prelude::*;
use epismc::sim::checkpoint::SimCheckpoint;
use epismc::sim::covid_age::{CovidAgeModel, CovidAgeParams};
use epismc::smc::simulator::TrajectorySimulator;

/// Adapter: theta[0] = global transmission rate of the age model.
struct CovidAgeSimulator {
    base: CovidAgeParams,
}

impl CovidAgeSimulator {
    fn model(&self, theta: &[f64]) -> Result<CovidAgeModel, SmcError> {
        if theta.len() != 1 {
            return Err(SmcError::Simulation("expects one parameter".into()));
        }
        CovidAgeModel::new(CovidAgeParams {
            transmission_rate: theta[0],
            ..self.base.clone()
        })
        .map_err(SmcError::Simulation)
    }
}

impl TrajectorySimulator for CovidAgeSimulator {
    fn theta_dim(&self) -> usize {
        1
    }

    fn output_names(&self) -> Vec<String> {
        CovidAgeModel::new(self.base.clone())
            .expect("valid")
            .spec()
            .output_names()
    }

    fn run_fresh(
        &self,
        theta: &[f64],
        seed: u64,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SmcError> {
        let m = self.model(theta)?;
        let mut sim = Simulation::new(
            m.spec(),
            BinomialChainStepper::daily(),
            m.initial_state(seed),
        )?;
        sim.run_until(end_day);
        let ck = sim.checkpoint();
        Ok((sim.into_series(), ck))
    }

    fn run_from(
        &self,
        checkpoint: &SimCheckpoint,
        theta: &[f64],
        seed: u64,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SmcError> {
        let m = self.model(theta)?;
        let mut sim = Simulation::resume_with_seed(
            m.spec(),
            BinomialChainStepper::daily(),
            checkpoint,
            seed,
        )?;
        sim.run_until(end_day);
        let ck = sim.checkpoint();
        Ok((sim.into_series(), ck))
    }
}

fn main() {
    let base = CovidAgeParams::three_groups(60_000, 150);
    let simulator = CovidAgeSimulator { base: base.clone() };

    // Synthetic observed cases from a known theta, 30% under-reported.
    let true_theta = 0.32;
    let (truth_series, _) = simulator.run_fresh(&[true_theta], 404, 45).expect("truth");
    let true_cases = truth_series.series_f64("infections").expect("series");
    let mut rng = Xoshiro256PlusPlus::new(7);
    let observed_cases: Vec<f64> = true_cases
        .iter()
        .map(|&c| epismc::stats::dist::sample_binomial(&mut rng, c as u64, 0.7) as f64)
        .collect();

    // Calibrate the global transmission rate.
    let config = CalibrationConfig::builder()
        .n_params(250)
        .n_replicates(6)
        .resample_size(500)
        .seed(12)
        .build();
    let observed = ObservedData::cases_only(observed_cases);
    let result = SingleWindowIs::new(&simulator, config)
        .run(&Priors::paper(), &observed, TimeWindow::new(15, 45))
        .expect("calibration");
    let th = PosteriorSummary::of_theta(&result.posterior, 0);
    println!(
        "age-structured calibration: true theta {true_theta:.2}, posterior {:.3} [{:.3}, {:.3}]",
        th.mean, th.q05, th.q95
    );

    // Age-targeted interventions as contact-matrix edits, branched from
    // the calibrated posterior checkpoints.
    println!("\n45-day forecast of total deaths under age-targeted interventions:");
    let horizon = 45 + 45;
    type ScenarioEdit = Box<dyn Fn(&mut CovidAgeParams)>;
    let scenarios: Vec<(&str, ScenarioEdit)> = vec![
        ("status quo", Box::new(|_| {})),
        (
            "close schools (child rows/cols -60%)",
            Box::new(|p: &mut CovidAgeParams| {
                for j in 0..3 {
                    p.contact[0][j] *= 0.4;
                    p.contact[j][0] *= 0.4;
                }
            }),
        ),
        (
            "shield elderly (elder rows/cols -60%)",
            Box::new(|p: &mut CovidAgeParams| {
                for j in 0..3 {
                    p.contact[2][j] *= 0.4;
                    p.contact[j][2] *= 0.4;
                }
            }),
        ),
    ];

    for (label, edit) in &scenarios {
        let mut params = base.clone();
        edit(&mut params);
        let branch_sim = CovidAgeSimulator { base: params };
        let mut death_totals = Vec::new();
        for (i, p) in result.posterior.particles().iter().take(120).enumerate() {
            let (tail, _) = branch_sim
                .run_from(&p.checkpoint, &p.theta, 9_000 + i as u64, horizon)
                .expect("branch");
            death_totals.push(tail.series("deaths").unwrap().iter().sum::<u64>() as f64);
        }
        death_totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| death_totals[((death_totals.len() - 1) as f64 * p) as usize];
        println!(
            "  {label:40} median {:>5.0}  90% [{:>4.0}, {:>5.0}]",
            q(0.5),
            q(0.05),
            q(0.95)
        );
    }
    println!("\nshielding the high-IFR group cuts deaths most per unit of contact reduction.");
}
