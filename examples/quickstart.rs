//! Quickstart: calibrate one time window of a stochastic epidemic model
//! against reported case counts with importance sampling (Algorithm 1).
//!
//! Run with: `cargo run --release --example quickstart`

use epismc::prelude::*;

fn main() {
    // 1. Simulated world (paper Section V-A): a stochastic COVID model
    //    with time-varying transmission, case counts under-reported with
    //    probability rho.
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    println!(
        "ground truth: {} total infections, {} reported ({}% reporting)",
        truth.true_cases.iter().sum::<f64>() as u64,
        truth.observed_cases.iter().sum::<f64>() as u64,
        (100.0 * truth.realized_reporting_fraction()) as u64
    );

    // 2. The simulator the calibrator drives. theta[0] = transmission rate.
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("valid params");

    // 3. Algorithm 1 on the first window (days 20..=33): sample
    //    (theta, rho) from the prior, run seeded replicates, weight by the
    //    Gaussian sqrt-scale likelihood, resample.
    let config = CalibrationConfig::builder()
        .n_params(400)
        .n_replicates(8)
        .resample_size(800)
        .seed(7)
        .build();
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);
    let result = SingleWindowIs::new(&simulator, config)
        .run(&Priors::paper(), &observed, window)
        .expect("calibration");

    // 4. Posterior summaries.
    let theta = PosteriorSummary::of_theta(&result.posterior, 0);
    let rho = PosteriorSummary::of_rho(&result.posterior);
    println!(
        "\nposterior after window [{}, {}]:",
        window.start, window.end
    );
    println!(
        "  theta: mean {:.3} [90% CI {:.3}, {:.3}]   (truth {:.2})",
        theta.mean, theta.q05, theta.q95, truth.theta_truth[19]
    );
    println!(
        "  rho:   mean {:.3} [90% CI {:.3}, {:.3}]   (truth {:.2})",
        rho.mean, rho.q05, rho.q95, truth.rho_truth[19]
    );
    println!(
        "  ESS {:.0} of {} weighted trajectories, {} unique ancestors survive",
        result.ess,
        result.posterior.len(),
        result.unique_ancestors
    );
    assert!(
        theta.covers(truth.theta_truth[19]),
        "truth should be inside the 90% CI"
    );
    println!("\ntruth covered by the 90% credible interval — calibration succeeded");
}
