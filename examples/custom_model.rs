//! Bring your own simulator: define a custom compartmental model with the
//! generic `ModelSpec` engine, wrap it in a `TrajectorySimulator`, and
//! calibrate it with the same SIS machinery — nothing in the calibrator
//! is COVID-specific (the paper's Discussion: "the approach applies
//! equally well to other stochastic simulation models").
//!
//! The model here is an SIRS influenza-like process with waning immunity.
//!
//! Run with: `cargo run --release --example custom_model`

use epismc::prelude::*;
use epismc::sim::checkpoint::SimCheckpoint;
use epismc::sim::spec::{CensusSpec, Compartment, FlowSpec, Infection, ModelSpec, Progression};
use epismc::smc::simulator::TrajectorySimulator;
use epismc::smc::sis::{ObservedData, Priors, SingleWindowIs};

/// SIRS with waning immunity: S -> I -> R -> S.
#[derive(Clone)]
struct SirsSimulator {
    population: u64,
    initial_infected: u64,
    infectious_period: f64,
    waning_period: f64,
}

impl SirsSimulator {
    fn spec(&self, theta: f64) -> ModelSpec {
        ModelSpec {
            name: "sirs".into(),
            compartments: vec![
                Compartment::simple("S"),
                Compartment::new("I", 2, 1.0),
                Compartment::new("R", 1, 0.0),
            ],
            progressions: vec![
                Progression {
                    from: 1,
                    mean_dwell: self.infectious_period,
                    branches: vec![(2, 1.0)],
                },
                Progression {
                    from: 2,
                    mean_dwell: self.waning_period,
                    branches: vec![(0, 1.0)],
                },
            ],
            infections: vec![Infection::simple(0, 1)],
            transmission_rate: theta,
            flows: vec![FlowSpec {
                name: "infections".into(),
                edges: vec![(0, 1)],
            }],
            censuses: vec![CensusSpec {
                name: "prevalence".into(),
                compartments: vec![1],
            }],
        }
    }

    fn build(
        &self,
        theta: &[f64],
        seed: u64,
    ) -> Result<Simulation<BinomialChainStepper>, SmcError> {
        if theta.len() != 1 {
            return Err(SmcError::Simulation("SIRS expects one parameter".into()));
        }
        let spec = self.spec(theta[0]);
        let mut st = epismc::sim::state::SimState::empty(&spec, seed);
        st.seed_compartment(&spec, 0, self.population - self.initial_infected);
        st.seed_compartment(&spec, 1, self.initial_infected);
        Ok(Simulation::new(spec, BinomialChainStepper::daily(), st)?)
    }
}

impl TrajectorySimulator for SirsSimulator {
    fn theta_dim(&self) -> usize {
        1
    }

    fn output_names(&self) -> Vec<String> {
        vec!["infections".into(), "prevalence".into()]
    }

    fn run_fresh(
        &self,
        theta: &[f64],
        seed: u64,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SmcError> {
        let mut sim = self.build(theta, seed)?;
        sim.run_until(end_day);
        let ck = sim.checkpoint();
        Ok((sim.into_series(), ck))
    }

    fn run_from(
        &self,
        checkpoint: &SimCheckpoint,
        theta: &[f64],
        seed: u64,
        end_day: u32,
    ) -> Result<(DailySeries, SimCheckpoint), SmcError> {
        if theta.len() != 1 {
            return Err(SmcError::Simulation("SIRS expects one parameter".into()));
        }
        let mut sim = Simulation::resume_with_seed(
            self.spec(theta[0]),
            BinomialChainStepper::daily(),
            checkpoint,
            seed,
        )?;
        sim.run_until(end_day);
        let ck = sim.checkpoint();
        Ok((sim.into_series(), ck))
    }
}

fn main() {
    let sirs = SirsSimulator {
        population: 30_000,
        initial_infected: 90,
        infectious_period: 4.0,
        waning_period: 60.0,
    };

    // Generate synthetic observations from a known theta, unbiased.
    let true_theta = 0.55;
    let (truth_series, _) = sirs.run_fresh(&[true_theta], 99, 40).expect("truth run");
    let observed_cases = truth_series.series_f64("infections").expect("series");

    // Calibrate with a flat prior; identity-like setup (rho plays no role
    // since the bias is binomial but we observe everything: rho ~ 1).
    let config = CalibrationConfig::builder()
        .n_params(300)
        .n_replicates(6)
        .resample_size(600)
        // Seed re-blessed for the exact BINV/BTPE binomial sampler stream.
        .seed(1)
        .build();
    let priors = Priors {
        theta: vec![Box::new(UniformPrior::new(0.2, 1.0))],
        rho: Box::new(BetaPrior::new(50.0, 1.0)), // concentrated near full reporting
    };
    let observed = ObservedData::cases_only(observed_cases);
    let result = SingleWindowIs::new(&sirs, config)
        .run(&priors, &observed, TimeWindow::new(10, 40))
        .expect("calibration");

    let th = PosteriorSummary::of_theta(&result.posterior, 0);
    println!("custom SIRS model calibration:");
    println!(
        "  true theta {true_theta:.2}, posterior mean {:.3} [90% CI {:.3}, {:.3}]",
        th.mean, th.q05, th.q95
    );
    assert!(
        th.covers(true_theta),
        "true theta should fall inside the 90% credible interval"
    );
    println!("  truth inside the 90% CI — the generic engine calibrates custom models");
}
