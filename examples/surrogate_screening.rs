//! Surrogate-assisted calibration (the paper's Discussion: "the use of
//! surrogates for the individual trajectories may be required" for
//! expensive simulators): fit a Gaussian-process emulator of the
//! parameter-to-log-weight surface on a small pilot ensemble, screen a
//! large proposal pool through it, and spend simulator time only on the
//! survivors — then compare against spending the same simulation budget
//! without screening.
//!
//! Run with: `cargo run --release --example surrogate_screening`

use epismc::prelude::*;
use epismc::smc::simulator::TrajectorySimulator;
use epismc::smc::sis::score_window;
use epismc::smc::surrogate::SurrogateScreen;
use epismc::stats::rng::derive_stream;

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let observed = ObservedData::cases_only(truth.observed_cases.clone());
    let window = TimeWindow::new(20, 33);

    // Step 1: a small pilot ensemble (cheap), keeping the weighted
    // candidates.
    let pilot_cfg = CalibrationConfig::builder()
        .n_params(80)
        .n_replicates(3)
        .resample_size(160)
        .seed(31)
        .keep_prior_ensemble(true)
        .build();
    let pilot = SingleWindowIs::new(&simulator, pilot_cfg)
        .run(&Priors::paper(), &observed, window)
        .expect("pilot");
    let pilot_ensemble = pilot.prior_ensemble.as_ref().expect("kept");
    println!(
        "pilot: {} simulated trajectories, posterior theta ~ {:.3}",
        pilot_ensemble.len(),
        pilot.posterior.mean_theta(0)
    );

    // Step 2: fit the emulator and screen a large prior proposal pool.
    let screen = SurrogateScreen::fit_from_ensemble(pilot_ensemble).expect("fit");
    let mut rng = Xoshiro256PlusPlus::new(77);
    let priors = Priors::paper();
    let pool: Vec<(Vec<f64>, f64)> = (0..2_000)
        .map(|_| {
            (
                vec![priors.theta[0].sample(&mut rng)],
                priors.rho.sample(&mut rng),
            )
        })
        .collect();
    let kept = screen.screen(&pool, 0.10, 1.0);
    println!(
        "screened {} proposals down to {} ({}% of the pool) using the GP emulator",
        pool.len(),
        kept.len(),
        100 * kept.len() / pool.len()
    );

    // Step 3: spend the real simulation budget on the survivors and
    // compare their realized weights with an unscreened random subset of
    // the same size.
    let evaluate = |indices: &[usize], tag: u64| -> f64 {
        let mut total = 0.0;
        for (j, &i) in indices.iter().enumerate() {
            let (theta, rho) = &pool[i];
            let seed = derive_stream(500, &[tag, j as u64]);
            let (traj, _) = simulator.run_fresh(theta, seed, window.end).expect("sim");
            let traj = episim::output::SharedTrajectory::root(traj);
            let lw = score_window(&traj, *rho, seed, &observed, window).expect("score");
            total += lw.exp();
        }
        total / indices.len() as f64
    };
    let screened_mean_weight = evaluate(&kept, 1);
    let random_subset: Vec<usize> = (0..kept.len()).collect();
    let random_mean_weight = evaluate(&random_subset, 2);
    println!(
        "mean realized (linear) weight: screened {screened_mean_weight:.2e} vs unscreened {random_mean_weight:.2e}"
    );
    println!(
        "screening concentrated the simulation budget {:.0}x better",
        screened_mean_weight / random_mean_weight.max(1e-300)
    );
    assert!(
        screened_mean_weight > random_mean_weight,
        "screened proposals should realize higher weights"
    );
}
