//! Calibrating to multiple data streams (paper Section V-C / Figure 5):
//! reported cases carry a binomial reporting bias; deaths are observed
//! without bias. Adding the death stream tightens the posterior.
//!
//! Also shows assembling a custom `DataSource` (hospitalization census
//! with its own likelihood) — the "highly adaptable framework" claim of
//! the paper's Section V-C.
//!
//! Run with: `cargo run --release --example multi_source`

use std::sync::Arc;

use epismc::prelude::*;
use epismc::smc::sis::{DataSource, ObservedSeries};

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");
    let window = TimeWindow::new(20, 47);
    let config = CalibrationConfig::builder()
        .n_params(400)
        .n_replicates(8)
        .resample_size(800)
        .seed(5)
        .build();

    // Configuration A: cases only.
    let obs_cases = ObservedData::cases_only(truth.observed_cases.clone());
    // Configuration B: cases + deaths.
    let obs_both =
        ObservedData::cases_and_deaths(truth.observed_cases.clone(), truth.deaths.clone());
    // Configuration C: cases + deaths + hospital census as a third,
    // hand-assembled source (identity bias, looser sigma).
    let mut obs_three =
        ObservedData::cases_and_deaths(truth.observed_cases.clone(), truth.deaths.clone());
    obs_three.push_source(DataSource {
        series: "hospital_census".into(),
        observed: ObservedSeries::from_day_one(truth.hospital_census.clone()),
        bias: Arc::new(IdentityBias),
        likelihood: Arc::new(GaussianSqrtLikelihood::new(2.0)),
    });

    println!(
        "calibrating window [{}, {}] under three data configurations:\n",
        window.start, window.end
    );
    println!(
        "{:>16} {:>9} {:>9} {:>9} {:>8}",
        "sources", "th_mean", "th_sd", "rho_mean", "ESS"
    );
    for (label, obs) in [
        ("cases", &obs_cases),
        ("cases+deaths", &obs_both),
        ("cases+deaths+H", &obs_three),
    ] {
        let result = SingleWindowIs::new(&simulator, config.clone())
            .run(&Priors::paper(), obs, window)
            .expect("calibration");
        let th = PosteriorSummary::of_theta(&result.posterior, 0);
        let rho = PosteriorSummary::of_rho(&result.posterior);
        println!(
            "{:>16} {:>9.3} {:>9.3} {:>9.3} {:>8.0}",
            label, th.mean, th.sd, rho.mean, result.ess
        );
    }
    println!(
        "\ntruth: theta {:.2}, rho {:.2} over this window's start",
        truth.theta_truth[(window.start - 1) as usize],
        truth.rho_truth[(window.start - 1) as usize]
    );
    println!("adding independent streams concentrates the posterior (smaller th_sd).");
}
