//! Durable calibration: persist every window's posterior to an on-disk
//! store, crash the campaign mid-run, then resume it — and verify the
//! resumed run is bit-identical to one that never crashed.
//!
//! Run with: `cargo run --release --example durable_run`

use epismc::prelude::*;

fn main() {
    let scenario = Scenario::paper_tiny();
    let truth = generate_ground_truth(&scenario, scenario.truth_seed);
    let simulator = CovidSimulator::new(scenario.base_params.clone()).expect("params");

    let plan = WindowPlan::paper(scenario.horizon);
    let config = CalibrationConfig::builder()
        .n_params(160)
        .n_replicates(6)
        .resample_size(320)
        .seed(11)
        .build();
    let calibrator = SequentialCalibrator::new(
        &simulator,
        config,
        vec![JitterKernel::symmetric(0.10, 0.05, 0.8)],
        JitterKernel::asymmetric(0.05, 0.08, 0.05, 1.0),
    );
    let observed = ObservedData::cases_only(truth.observed_cases.clone());

    // A durable run snapshots its complete state into the store after
    // each window (tmp-file + atomic rename per record).
    let dir = std::env::temp_dir().join(format!("epismc-durable-run-{}", std::process::id()));
    let store = DirStore::open(&dir).expect("open store");
    let policy = CheckpointPolicy::every_window();

    // Simulate a crash: the rename publishing the third snapshot is torn,
    // exactly as if the process died mid-write.
    let faulty = FaultStore::new(&store, FaultPlan::fail_write_at(2, Fault::TornRename));
    let crash = calibrator
        .run_persisted(&Priors::paper(), &observed, &plan, &faulty, &policy)
        .expect_err("campaign dies while persisting window 2");
    println!("crashed mid-campaign: {crash}");
    println!(
        "snapshots on disk after the crash: {:?}",
        store.list().expect("list")
    );

    // Resume recovers the newest decodable snapshot and replays only the
    // remaining windows.
    let resumed = calibrator
        .resume_from(&Priors::paper(), &observed, &plan, &store, &policy)
        .expect("resume");
    let report = resumed.resume.expect("resume report");
    println!(
        "resumed from window {} ({} damaged record(s) skipped), {} window(s) replayed",
        report.resumed_window,
        report.recoveries,
        resumed.windows.len()
    );

    // Persistence never changes results: every resumed window matches a
    // run that never crashed, bit for bit.
    let clean = calibrator
        .run(&Priors::paper(), &observed, &plan)
        .expect("clean run");
    for rw in &resumed.windows {
        let cw = clean
            .windows
            .iter()
            .find(|w| w.window == rw.window)
            .expect("matching window");
        assert_eq!(
            rw.log_marginal.to_bits(),
            cw.log_marginal.to_bits(),
            "window [{},{}] log-marginal diverged",
            rw.window.start,
            rw.window.end
        );
        println!(
            "  window [{:>2},{:>2}]: log-marginal {:>9.3} (bit-identical to the uncrashed run)",
            rw.window.start, rw.window.end, rw.log_marginal
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
