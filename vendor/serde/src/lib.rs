//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stand-in uses a simple
//! value model: [`Serialize`] converts to a [`Value`] tree, and
//! [`Deserialize`] reconstructs from one. The companion `serde_derive`
//! proc-macro generates both impls for named-field structs and
//! unit-variant enums (the only shapes this workspace uses), honouring
//! the `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(skip)]` and `#[serde(rename_all = "snake_case")]`
//! attributes. The `serde_json` stand-in prints and parses this value
//! model.
//!
//! Integer fidelity matters for this workspace (u64 RNG states and layout
//! hashes must round-trip bit-exactly), so integers are kept out of the
//! `f64` lane: `Value::UInt`/`Value::Int` preserve full 64-bit precision.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-printed JSON-like value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// Negative integer (kept exact down to `i64::MIN`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Conversion into the value model.
pub trait Serialize {
    /// Convert to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from the value model.
pub trait Deserialize: Sized {
    /// Rebuild from a [`Value`] tree.
    ///
    /// # Errors
    /// Returns a message describing the first mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range for {}", stringify!($t))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    _ => Err(format!("expected integer for {}", stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range for {}", stringify!($t))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    _ => Err(format!("expected integer for {}", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err("expected number for f64".into()),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected boolean".into()),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err("expected string".into()),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err("expected array".into()),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {n}"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err("expected 2-element array".into()),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err("expected 3-element array".into()),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
