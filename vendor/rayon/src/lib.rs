//! Minimal offline stand-in for `rayon`, covering the subset this
//! workspace uses: `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! and a dedicated `ThreadPool` with `install`.
//!
//! Scheduling is *dynamic*: workers claim fixed-size chunks of the index
//! range from a shared atomic cursor (the work-stealing analogue for an
//! indexed range), so a slow item delays only its own chunk instead of a
//! statically assigned 1/N slice of the grid. Each result is written
//! directly into its index's slot of a preallocated output slab, so
//! collection order is index order by construction — bit-identical for
//! any worker count or chunk size, the same guarantee real rayon's
//! indexed collect provides. A pool of one thread runs strictly
//! sequentially on the calling thread.
//!
//! Dedicated pools with two or more workers are **persistent**: the OS
//! threads are spawned once at [`ThreadPoolBuilder::build`] and every
//! grid executed under [`ThreadPool::install`] is broadcast to them over
//! a condvar, so the per-grid serial overhead is one mutex hand-off
//! instead of `workers` thread spawns + joins. Parallel iterators run
//! outside any installed pool fall back to scoped threads spawned per
//! call.
//!
//! The default worker count honors `RAYON_NUM_THREADS` (read once per
//! process), matching real rayon's global-pool convention.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static POOL_HANDLE: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
}

static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

fn current_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Worker count governing parallel iterators on this thread: the
/// installed pool's count inside [`ThreadPool::install`], otherwise the
/// process default (`RAYON_NUM_THREADS` or the core count).
pub fn current_num_threads() -> usize {
    current_threads()
}

/// Default chunk size for `n` items over `workers` workers: small enough
/// that stragglers rebalance (several chunks per worker), large enough
/// that the atomic claim is amortized across many items.
///
/// The upper clamp matters at paper-scale grids: a 500k-cell window
/// under the old `1024` cap split into ~490 chunks *regardless of the
/// worker count*, so per-chunk bookkeeping (cursor claim, state
/// re-entry) dominated cheap cells. `8192` keeps tens of chunks per
/// worker at that scale — enough for stragglers to rebalance, two
/// orders of magnitude fewer claims.
pub fn adaptive_chunk(n: usize, workers: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (n / (workers.max(1) * 8)).clamp(1, 8192)
}

/// Error building a thread pool (never produced by this stand-in).
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A type-erased borrow of a submitter's worker closure: a monomorphized
/// trampoline plus the closure's address. Only dereferenced while the
/// submitting call blocks inside [`PoolShared::broadcast`], which keeps
/// the closure alive for the whole execution.
#[derive(Clone, Copy)]
struct Job {
    /// Monomorphized trampoline reconstituting the worker closure.
    // SAFETY: only invoked by `worker_loop` with the `ctx` stored next
    // to it, which the submitter's `broadcast` call keeps alive (it
    // blocks until every worker reports completion).
    run: unsafe fn(usize),
    ctx: usize,
}

/// Monomorphized trampoline reconstituting the worker closure from its
/// erased address.
///
/// # Safety
/// `ctx` must be the address of a live `W` for the duration of the call.
unsafe fn run_erased<W: Fn() + Sync>(ctx: usize) {
    (*(ctx as *const W))();
}

/// Erase `body` into a [`Job`]. The caller must keep `body` alive until
/// the job has fully drained (guaranteed by blocking in `broadcast`).
fn make_job<W: Fn() + Sync>(body: &W) -> Job {
    Job {
        run: run_erased::<W>,
        ctx: std::ptr::from_ref(body) as usize,
    }
}

struct PoolState {
    /// The job every worker runs for the current epoch; `Some` from
    /// submission until the submitter observes completion.
    job: Option<Job>,
    /// Bumped once per broadcast; workers compare against their last
    /// seen value so a job runs exactly once per worker.
    epoch: u64,
    /// Workers still executing the current job.
    running: usize,
    /// First panic payload observed this epoch (re-raised on the
    /// submitting thread).
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

/// Shared state between a persistent pool's workers and submitters.
struct PoolShared {
    workers: usize,
    state: Mutex<PoolState>,
    /// Signals workers: a new epoch was published or shutdown requested.
    work: Condvar,
    /// Signals submitters: the current job drained (or the slot freed).
    done: Condvar,
}

impl PoolShared {
    fn new(workers: usize) -> Self {
        Self {
            workers,
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                running: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Run `job` on every pool worker and block until all finish.
    /// Concurrent submitters queue on the `job` slot. Returns the first
    /// panic payload, if any worker panicked.
    fn broadcast(&self, job: Job) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().unwrap();
        while st.job.is_some() {
            st = self.done.wait(st).unwrap();
        }
        st.job = Some(job);
        st.epoch = st.epoch.wrapping_add(1);
        st.running = self.workers;
        self.work.notify_all();
        while st.running > 0 {
            st = self.done.wait(st).unwrap();
        }
        st.job = None;
        let panic = st.panic.take();
        drop(st);
        // Free the job slot for any queued submitter.
        self.done.notify_all();
        panic
    }
}

/// Body of each persistent worker thread: sleep on the condvar, run one
/// job per epoch, report completion, repeat until shutdown.
fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    // A new epoch is only published together with a job.
                    break st.job.expect("pool epoch advanced without a job");
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // Catch so a panicking grid cell poisons neither the worker nor
        // the pool: the payload is re-raised on the submitting thread.
        // SAFETY: `job.ctx` is the address of the submitter's closure;
        // the submitter blocks inside `broadcast` until this worker's
        // `running` decrement below, so the closure outlives this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx) }));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// Builder for a dedicated pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the worker count (`0` = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. For two or more workers the OS threads are
    /// spawned here, once, and reused by every grid run under
    /// [`ThreadPool::install`]; a one-thread pool stays threadless and
    /// runs sequentially on the calling thread.
    ///
    /// # Errors
    /// Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        let (shared, handles) = if threads >= 2 {
            let shared = Arc::new(PoolShared::new(threads));
            let handles = (0..threads)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect();
            (Some(shared), handles)
        } else {
            (None, Vec::new())
        };
        Ok(ThreadPool {
            threads,
            shared,
            handles,
        })
    }
}

/// A pool with a fixed worker count. Pools of two or more threads own
/// persistent worker threads (see [`ThreadPoolBuilder::build`]); dropping
/// the pool shuts them down and joins them.
pub struct ThreadPool {
    threads: usize,
    shared: Option<Arc<PoolShared>>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Restores the calling thread's pool bindings even if the installed
/// closure unwinds, so a panicking grid cannot leak a stale pool into
/// later work on this thread.
struct InstallGuard {
    prev_threads: Option<usize>,
    prev_handle: Option<Arc<PoolShared>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        POOL_HANDLE.with(|c| *c.borrow_mut() = self.prev_handle.take());
        POOL_THREADS.with(|c| c.set(self.prev_threads));
    }
}

impl ThreadPool {
    /// Run `f` with this pool governing any parallel iterators it
    /// executes: they use the pool's thread count and, for persistent
    /// pools, dispatch onto its resident workers.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let guard = InstallGuard {
            prev_threads: POOL_THREADS.with(|c| c.replace(Some(self.threads))),
            prev_handle: POOL_HANDLE.with(|c| c.replace(self.shared.clone())),
        };
        let out = f();
        drop(guard);
        out
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            let mut st = shared.state.lock().unwrap();
            st.shutdown = true;
            drop(st);
            shared.work.notify_all();
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar {
            range: self,
            min_len: None,
        }
    }
}

/// Parallel iterator over an index range.
pub struct RangePar {
    range: Range<usize>,
    min_len: Option<usize>,
}

impl RangePar {
    /// Pin the scheduling chunk size (real rayon's `with_min_len`):
    /// workers claim `len`-item chunks from the shared cursor instead of
    /// the adaptive default. Results are unaffected — only scheduling
    /// granularity changes.
    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = Some(len.max(1));
        self
    }

    /// Map each index through `f`.
    pub fn map<T, F>(self, f: F) -> MapPar<F>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        MapPar {
            range: self.range,
            min_len: self.min_len,
            f,
        }
    }

    /// Map each index through `f` with a per-worker value built by
    /// `init` — real rayon's `map_init`: the value is created once per
    /// worker and threaded through every chunk that worker claims, which
    /// is what makes per-worker scratch reuse possible.
    pub fn map_init<I, T, INIT, F>(self, init: INIT, f: F) -> MapInitPar<INIT, F>
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
    {
        MapInitPar {
            range: self.range,
            min_len: self.min_len,
            init,
            f,
        }
    }
}

/// Mapped parallel iterator.
pub struct MapPar<F> {
    range: Range<usize>,
    min_len: Option<usize>,
    f: F,
}

/// Collection target for parallel iterators (only `Vec<T>` here).
pub trait FromParallelIterator<T> {
    /// Build from index-ordered results.
    fn from_ordered(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(v: Vec<T>) -> Self {
        v
    }
}

impl<F> MapPar<F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        let f = self.f;
        C::from_ordered(run_dynamic(self.range, self.min_len, &|| (), &|(), i| f(i)))
    }
}

/// Mapped parallel iterator with per-worker init state.
pub struct MapInitPar<INIT, F> {
    range: Range<usize>,
    min_len: Option<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> MapInitPar<INIT, F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling. `init` runs once per worker (once total on the
    /// sequential path), matching real rayon's contract that the init
    /// value is reused across an unspecified batch of consecutive items.
    pub fn collect<I, T, C>(self) -> C
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        C::from_ordered(run_dynamic(self.range, self.min_len, &self.init, &self.f))
    }
}

/// Raw pointer into the output slab, shareable across scoped workers.
/// Soundness: every index in `0..n` is claimed by exactly one worker
/// (the atomic cursor hands out disjoint chunks), so no slot is written
/// twice and no two workers alias a slot.
struct SlabPtr<T>(*mut T);

// SAFETY: a `SlabPtr` is a plain pointer into a `Vec<T>` allocation that
// outlives the workers (the submitting frame owns it); moving the
// pointer to a worker thread moves no `T`, and the values written
// through it are `T: Send`.
unsafe impl<T: Send> Send for SlabPtr<T> {}
// SAFETY: shared use is write-only through `SlabPtr::write` at indices
// handed out uniquely by the atomic claim cursor — no two workers ever
// alias one slot, and nothing reads a slot before the join (see
// `run_dynamic`'s panic-safety note for the unwritten-slot case).
unsafe impl<T: Send> Sync for SlabPtr<T> {}

impl<T> SlabPtr<T> {
    /// Write `value` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation and written at most once.
    unsafe fn write(&self, i: usize, value: T) {
        self.0.add(i).write(value);
    }
}

/// Dynamic-chunk execution: workers claim `chunk`-sized index blocks from
/// a shared cursor and write each result into its slot of a preallocated
/// slab. Output order is index order by construction.
///
/// When a persistent pool is installed on the calling thread the claim
/// loop is broadcast to its resident workers (one condvar hand-off);
/// otherwise scoped threads are spawned for this call. Pool workers
/// beyond the grid's needs find the cursor exhausted and never build an
/// `init` state — the state is created lazily on first claimed chunk.
///
/// Panic safety: a worker panic propagates on the calling thread before
/// `set_len` (the scope join re-raises it; the pool path re-raises the
/// payload captured by `broadcast`), so the slab is dropped with length
/// zero — already-written elements leak (no drops run) but no
/// uninitialized memory is ever read.
fn run_dynamic<I, T, INIT, F>(
    range: Range<usize>,
    min_len: Option<usize>,
    init: &INIT,
    f: &F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    INIT: Fn() -> I + Send + Sync,
    F: Fn(&mut I, usize) -> T + Send + Sync,
{
    let n = range.len();
    let workers = current_threads().max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = init();
        return range.map(|i| f(&mut state, i)).collect();
    }
    let chunk = min_len.unwrap_or_else(|| adaptive_chunk(n, workers)).max(1);
    let start = range.start;
    let mut out: Vec<T> = Vec::with_capacity(n);
    let slab = SlabPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let worker = |state: &mut Option<I>| loop {
        // ORDER: `Relaxed` is sufficient here. Claim uniqueness — each
        // index handed to exactly one worker — needs only the RMW
        // atomicity of `fetch_add`, which every ordering provides; no
        // data is published *through* the cursor. The slab writes made
        // under a claim are published to the caller by the join, not
        // the cursor: the scoped-thread join, or on the pool path the
        // worker's final `state` mutex release in `worker_loop`
        // happens-before the submitter's wakeup under the same mutex in
        // `broadcast`. Both orderings happen-before `set_len` below.
        // The interleaving model (tests/pool_model.rs) checks the
        // drain-before-return protocol; tests/pool_lifecycle.rs pins
        // claim uniqueness under chunk=1 contention.
        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
        if lo >= n {
            break;
        }
        let state = state.get_or_insert_with(init);
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            let value = f(state, start + i);
            // SAFETY: `i < n` and the cursor hands each index to
            // exactly one worker.
            unsafe { slab.write(i, value) };
        }
    };
    let pool = POOL_HANDLE.with(|c| c.borrow().clone());
    match pool {
        Some(shared) => {
            // Broadcast the claim loop to the resident workers. The
            // closure borrows the slab/cursor/f on this stack frame;
            // `broadcast` blocks until every worker finished, keeping
            // those borrows alive for the whole execution.
            let body = || worker(&mut None);
            if let Some(payload) = shared.broadcast(make_job(&body)) {
                resume_unwind(payload);
            }
        }
        None => {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let worker = &worker;
                    scope.spawn(move || worker(&mut None));
                }
            });
        }
    }
    // SAFETY: every worker was joined without panicking, so all n slots
    // were initialized exactly once.
    unsafe { out.set_len(n) };
    out
}

/// The traits needed for `.into_par_iter().map(..).collect()`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_collection_across_pools() {
        let f = |i: usize| i * 3;
        let seq: Vec<usize> = (0..97).map(f).collect();
        let par: Vec<usize> = (0..97usize).into_par_iter().map(f).collect();
        assert_eq!(seq, par);
        let pooled: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(|| (0..97usize).into_par_iter().map(f).collect());
        assert_eq!(seq, pooled);
    }

    #[test]
    fn ordered_collection_across_chunk_sizes() {
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 7);
        let seq: Vec<usize> = (0..257).map(f).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for chunk in [1usize, 3, 7, 64, 300] {
            let par: Vec<usize> = pool.install(|| {
                (0..257usize)
                    .into_par_iter()
                    .with_min_len(chunk)
                    .map(f)
                    .collect()
            });
            assert_eq!(seq, par, "chunk = {chunk}");
        }
    }

    #[test]
    fn nonzero_range_start_preserved() {
        let par: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(|| (10..30usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(par, (10..30).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0usize
                    },
                    |calls, i| {
                        *calls += 1;
                        i * 7
                    },
                )
                .collect()
        });
        let seq: Vec<usize> = (0..100).map(|i| i * 7).collect();
        assert_eq!(out, seq);
        // One init per worker, far fewer than one per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn map_init_sequential_inits_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..10usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                    },
                    |(), i| i,
                )
                .collect()
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_init_chunked_keeps_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // With chunk = 1 every item is claimed individually; state must
        // still be one-per-worker, not one-per-chunk.
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..50usize)
                .into_par_iter()
                .with_min_len(1)
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0usize
                    },
                    |_, i| i + 1,
                )
                .collect()
        });
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn install_restores_previous_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_threads(), 2));
        assert!(POOL_THREADS.with(|c| c.get()).is_none());
    }

    #[test]
    fn adaptive_chunk_bounds() {
        assert_eq!(adaptive_chunk(0, 4), 1);
        assert_eq!(adaptive_chunk(7, 4), 1);
        assert_eq!(adaptive_chunk(256, 4), 8);
        assert_eq!(adaptive_chunk(1 << 20, 1), 8192);
    }

    #[test]
    fn adaptive_chunk_keeps_chunks_per_worker_bounded() {
        // Characterization of the paper-scale regime: the old 1024 cap
        // saturated at 500k cells and left every worker with hundreds of
        // tiny chunks. The policy must keep chunks-per-worker in a band
        // wide enough for straggler rebalancing but narrow enough that
        // the atomic claim stays amortized.
        for &(n, w) in &[
            (500_000usize, 1usize),
            (500_000, 4),
            (500_000, 8),
            (1 << 20, 4),
        ] {
            let chunk = adaptive_chunk(n, w);
            let chunks = n.div_ceil(chunk);
            let per_worker = chunks as f64 / w as f64;
            assert!(
                per_worker >= 2.0,
                "n={n} w={w}: {per_worker} chunks/worker is too coarse to rebalance"
            );
            assert!(
                per_worker <= 128.0,
                "n={n} w={w}: {per_worker} chunks/worker re-pays the claim overhead \
                 the cap exists to amortize"
            );
        }
        // The small-grid policy (several chunks per worker) is unchanged.
        assert_eq!(adaptive_chunk(256, 4), 256 / (4 * 8));
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Three separate grids must execute on the same resident worker
        // threads — no per-call spawning.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        for round in 0..3usize {
            let out: Vec<usize> = pool.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        ids.lock().unwrap().insert(std::thread::current().id());
                        i + round
                    })
                    .collect()
            });
            assert_eq!(out, (round..64 + round).collect::<Vec<_>>());
        }
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= 2,
            "expected at most 2 persistent workers across all grids, saw {distinct} thread ids"
        );
    }

    #[test]
    fn pool_survives_worker_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        assert!(i != 17, "injected failure");
                        i
                    })
                    .collect::<usize, Vec<usize>>()
            })
        }));
        assert!(result.is_err(), "cell panic must propagate to the caller");
        // The install guard restored this thread's bindings despite the
        // unwind, and the pool is immediately reusable.
        assert!(POOL_THREADS.with(|c| c.get()).is_none());
        assert!(POOL_HANDLE.with(|c| c.borrow().is_none()));
        let out: Vec<usize> =
            pool.install(|| (0..32usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_pool_stays_threadless() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert!(pool.shared.is_none());
        assert!(pool.handles.is_empty());
        let caller = std::thread::current().id();
        let out: Vec<_> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| (i, std::thread::current().id()))
                .collect()
        });
        assert!(out.iter().all(|&(_, id)| id == caller));
    }

    #[test]
    fn drops_run_exactly_once_per_result() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<Counted> =
            pool.install(|| (0..123usize).into_par_iter().map(Counted).collect());
        assert_eq!(out.len(), 123);
        for (i, c) in out.iter().enumerate() {
            assert_eq!(c.0, i);
        }
        drop(out);
        assert_eq!(DROPS.load(Ordering::Relaxed), 123);
    }
}
