//! Minimal offline stand-in for `rayon`, covering the subset this
//! workspace uses: `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! and a dedicated `ThreadPool` with `install`.
//!
//! Scheduling is *dynamic*: workers claim fixed-size chunks of the index
//! range from a shared atomic cursor (the work-stealing analogue for an
//! indexed range), so a slow item delays only its own chunk instead of a
//! statically assigned 1/N slice of the grid. Each result is written
//! directly into its index's slot of a preallocated output slab, so
//! collection order is index order by construction — bit-identical for
//! any worker count or chunk size, the same guarantee real rayon's
//! indexed collect provides. A pool of one thread runs strictly
//! sequentially on the calling thread.
//!
//! The default worker count honors `RAYON_NUM_THREADS` (read once per
//! process), matching real rayon's global-pool convention.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

fn current_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Worker count governing parallel iterators on this thread: the
/// installed pool's count inside [`ThreadPool::install`], otherwise the
/// process default (`RAYON_NUM_THREADS` or the core count).
pub fn current_num_threads() -> usize {
    current_threads()
}

/// Default chunk size for `n` items over `workers` workers: small enough
/// that stragglers rebalance (several chunks per worker), large enough
/// that the atomic claim is amortized across many items.
pub fn adaptive_chunk(n: usize, workers: usize) -> usize {
    if n == 0 {
        return 1;
    }
    (n / (workers.max(1) * 8)).clamp(1, 1024)
}

/// Error building a thread pool (never produced by this stand-in).
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the worker count (`0` = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A pool with a fixed worker count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar {
            range: self,
            min_len: None,
        }
    }
}

/// Parallel iterator over an index range.
pub struct RangePar {
    range: Range<usize>,
    min_len: Option<usize>,
}

impl RangePar {
    /// Pin the scheduling chunk size (real rayon's `with_min_len`):
    /// workers claim `len`-item chunks from the shared cursor instead of
    /// the adaptive default. Results are unaffected — only scheduling
    /// granularity changes.
    pub fn with_min_len(mut self, len: usize) -> Self {
        self.min_len = Some(len.max(1));
        self
    }

    /// Map each index through `f`.
    pub fn map<T, F>(self, f: F) -> MapPar<F>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        MapPar {
            range: self.range,
            min_len: self.min_len,
            f,
        }
    }

    /// Map each index through `f` with a per-worker value built by
    /// `init` — real rayon's `map_init`: the value is created once per
    /// worker and threaded through every chunk that worker claims, which
    /// is what makes per-worker scratch reuse possible.
    pub fn map_init<I, T, INIT, F>(self, init: INIT, f: F) -> MapInitPar<INIT, F>
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
    {
        MapInitPar {
            range: self.range,
            min_len: self.min_len,
            init,
            f,
        }
    }
}

/// Mapped parallel iterator.
pub struct MapPar<F> {
    range: Range<usize>,
    min_len: Option<usize>,
    f: F,
}

/// Collection target for parallel iterators (only `Vec<T>` here).
pub trait FromParallelIterator<T> {
    /// Build from index-ordered results.
    fn from_ordered(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(v: Vec<T>) -> Self {
        v
    }
}

impl<F> MapPar<F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        let f = self.f;
        C::from_ordered(run_dynamic(self.range, self.min_len, &|| (), &|(), i| f(i)))
    }
}

/// Mapped parallel iterator with per-worker init state.
pub struct MapInitPar<INIT, F> {
    range: Range<usize>,
    min_len: Option<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> MapInitPar<INIT, F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling. `init` runs once per worker (once total on the
    /// sequential path), matching real rayon's contract that the init
    /// value is reused across an unspecified batch of consecutive items.
    pub fn collect<I, T, C>(self) -> C
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        C::from_ordered(run_dynamic(self.range, self.min_len, &self.init, &self.f))
    }
}

/// Raw pointer into the output slab, shareable across scoped workers.
/// Soundness: every index in `0..n` is claimed by exactly one worker
/// (the atomic cursor hands out disjoint chunks), so no slot is written
/// twice and no two workers alias a slot.
struct SlabPtr<T>(*mut T);

unsafe impl<T: Send> Send for SlabPtr<T> {}
unsafe impl<T: Send> Sync for SlabPtr<T> {}

impl<T> SlabPtr<T> {
    /// Write `value` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation and written at most once.
    unsafe fn write(&self, i: usize, value: T) {
        self.0.add(i).write(value);
    }
}

/// Dynamic-chunk execution: workers claim `chunk`-sized index blocks from
/// a shared cursor and write each result into its slot of a preallocated
/// slab. Output order is index order by construction.
///
/// Panic safety: if a worker panics, `std::thread::scope` joins the rest
/// and propagates the panic before `set_len`, so the slab is dropped with
/// length zero — already-written elements leak (no drops run) but no
/// uninitialized memory is ever read.
fn run_dynamic<I, T, INIT, F>(
    range: Range<usize>,
    min_len: Option<usize>,
    init: &INIT,
    f: &F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    INIT: Fn() -> I + Send + Sync,
    F: Fn(&mut I, usize) -> T + Send + Sync,
{
    let n = range.len();
    let workers = current_threads().max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = init();
        return range.map(|i| f(&mut state, i)).collect();
    }
    let chunk = min_len.unwrap_or_else(|| adaptive_chunk(n, workers)).max(1);
    let start = range.start;
    let mut out: Vec<T> = Vec::with_capacity(n);
    let slab = SlabPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slab = &slab;
            let cursor = &cursor;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + chunk).min(n);
                    for i in lo..hi {
                        let value = f(&mut state, start + i);
                        // SAFETY: `i < n` and the cursor hands each index
                        // to exactly one worker.
                        unsafe { slab.write(i, value) };
                    }
                }
            });
        }
    });
    // SAFETY: the scope joined every worker without panicking, so all n
    // slots were initialized exactly once.
    unsafe { out.set_len(n) };
    out
}

/// The traits needed for `.into_par_iter().map(..).collect()`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_collection_across_pools() {
        let f = |i: usize| i * 3;
        let seq: Vec<usize> = (0..97).map(f).collect();
        let par: Vec<usize> = (0..97usize).into_par_iter().map(f).collect();
        assert_eq!(seq, par);
        let pooled: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(|| (0..97usize).into_par_iter().map(f).collect());
        assert_eq!(seq, pooled);
    }

    #[test]
    fn ordered_collection_across_chunk_sizes() {
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 7);
        let seq: Vec<usize> = (0..257).map(f).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for chunk in [1usize, 3, 7, 64, 300] {
            let par: Vec<usize> = pool.install(|| {
                (0..257usize)
                    .into_par_iter()
                    .with_min_len(chunk)
                    .map(f)
                    .collect()
            });
            assert_eq!(seq, par, "chunk = {chunk}");
        }
    }

    #[test]
    fn nonzero_range_start_preserved() {
        let par: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(|| (10..30usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(par, (10..30).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0usize
                    },
                    |calls, i| {
                        *calls += 1;
                        i * 7
                    },
                )
                .collect()
        });
        let seq: Vec<usize> = (0..100).map(|i| i * 7).collect();
        assert_eq!(out, seq);
        // One init per worker, far fewer than one per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn map_init_sequential_inits_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..10usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                    },
                    |(), i| i,
                )
                .collect()
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_init_chunked_keeps_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // With chunk = 1 every item is claimed individually; state must
        // still be one-per-worker, not one-per-chunk.
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..50usize)
                .into_par_iter()
                .with_min_len(1)
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0usize
                    },
                    |_, i| i + 1,
                )
                .collect()
        });
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn install_restores_previous_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_threads(), 2));
        assert!(POOL_THREADS.with(|c| c.get()).is_none());
    }

    #[test]
    fn adaptive_chunk_bounds() {
        assert_eq!(adaptive_chunk(0, 4), 1);
        assert_eq!(adaptive_chunk(7, 4), 1);
        assert_eq!(adaptive_chunk(256, 4), 8);
        assert_eq!(adaptive_chunk(1 << 20, 1), 1024);
    }

    #[test]
    fn drops_run_exactly_once_per_result() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<Counted> =
            pool.install(|| (0..123usize).into_par_iter().map(Counted).collect());
        assert_eq!(out.len(), 123);
        for (i, c) in out.iter().enumerate() {
            assert_eq!(c.0, i);
        }
        drop(out);
        assert_eq!(DROPS.load(Ordering::Relaxed), 123);
    }
}
