//! Minimal offline stand-in for `rayon`, covering the subset this
//! workspace uses: `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! and a dedicated `ThreadPool` with `install`.
//!
//! Execution is chunked across `std::thread::scope` workers; results are
//! concatenated in index order, so collection order is deterministic and
//! independent of scheduling — the same guarantee real rayon's indexed
//! collect provides. A pool of one thread runs strictly sequentially on
//! the calling thread.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn current_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Error building a thread pool (never produced by this stand-in).
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the worker count (`0` = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A pool with a fixed worker count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;

    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct RangePar {
    range: Range<usize>,
}

impl RangePar {
    /// Map each index through `f`.
    pub fn map<T, F>(self, f: F) -> MapPar<F>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        MapPar {
            range: self.range,
            f,
        }
    }

    /// Map each index through `f` with a per-worker value built by
    /// `init` — real rayon's `map_init`: the value is created once per
    /// worker chunk and threaded through every call in that chunk, which
    /// is what makes per-worker scratch reuse possible.
    pub fn map_init<I, T, INIT, F>(self, init: INIT, f: F) -> MapInitPar<INIT, F>
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
    {
        MapInitPar {
            range: self.range,
            init,
            f,
        }
    }
}

/// Mapped parallel iterator.
pub struct MapPar<F> {
    range: Range<usize>,
    f: F,
}

/// Collection target for parallel iterators (only `Vec<T>` here).
pub trait FromParallelIterator<T> {
    /// Build from index-ordered results.
    fn from_ordered(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(v: Vec<T>) -> Self {
        v
    }
}

impl<F> MapPar<F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        C::from_ordered(run_chunked(self.range, &self.f))
    }
}

/// Mapped parallel iterator with per-worker init state.
pub struct MapInitPar<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> MapInitPar<INIT, F> {
    /// Evaluate in parallel; results are in index order regardless of
    /// scheduling. `init` runs once per worker chunk (once total on the
    /// sequential path), matching real rayon's contract that the init
    /// value is reused across an unspecified batch of consecutive items.
    pub fn collect<I, T, C>(self) -> C
    where
        I: Send,
        T: Send,
        INIT: Fn() -> I + Send + Sync,
        F: Fn(&mut I, usize) -> T + Send + Sync,
        C: FromParallelIterator<T>,
    {
        C::from_ordered(run_chunked_init(self.range, &self.init, &self.f))
    }
}

fn run_chunked_init<I, T, INIT, F>(range: Range<usize>, init: &INIT, f: &F) -> Vec<T>
where
    I: Send,
    T: Send,
    INIT: Fn() -> I + Send + Sync,
    F: Fn(&mut I, usize) -> T + Send + Sync,
{
    let n = range.len();
    let workers = current_threads().max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = init();
        return range.map(|i| f(&mut state, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let start = range.start;
    let end = range.end;
    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (start + w * chunk).min(end);
                let hi = (lo + chunk).min(end);
                scope.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

fn run_chunked<T, F>(range: Range<usize>, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let n = range.len();
    let workers = current_threads().max(1).min(n.max(1));
    if workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let start = range.start;
    let end = range.end;
    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (start + w * chunk).min(end);
                let hi = (lo + chunk).min(end);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// The traits needed for `.into_par_iter().map(..).collect()`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_collection_across_pools() {
        let f = |i: usize| i * 3;
        let seq: Vec<usize> = (0..97).map(f).collect();
        let par: Vec<usize> = (0..97usize).into_par_iter().map(f).collect();
        assert_eq!(seq, par);
        let pooled: Vec<usize> = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(|| (0..97usize).into_par_iter().map(f).collect());
        assert_eq!(seq, pooled);
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0usize
                    },
                    |calls, i| {
                        *calls += 1;
                        i * 7
                    },
                )
                .collect()
        });
        let seq: Vec<usize> = (0..100).map(|i| i * 7).collect();
        assert_eq!(out, seq);
        // One init per worker chunk, far fewer than one per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn map_init_sequential_inits_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..10usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                    },
                    |(), i| i,
                )
                .collect()
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn install_restores_previous_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_threads(), 2));
        assert!(POOL_THREADS.with(|c| c.get()).is_none());
    }
}
