//! Deterministic interleaving model of the persistent pool's
//! epoch-broadcast protocol (`src/lib.rs`).
//!
//! Vendoring `loom` is too heavy for this workspace, so this suite does
//! the next-best loom-style thing: it transcribes the protocol —
//! `PoolShared::broadcast`, `worker_loop`, and `ThreadPool::drop` — into
//! an explicit state machine and exhaustively explores **every**
//! interleaving of its critical sections with a DFS over cloned states.
//! Because all shared state in the real pool is guarded by one mutex and
//! every condvar wait sits in a while-loop re-checking its guard, the
//! only scheduling freedom is the order in which threads win the lock;
//! stepping whole critical sections atomically therefore covers the real
//! interleaving space at the protocol level. (The `Relaxed` claim cursor
//! and raw slab writes live *inside* a job and are covered separately:
//! by the `// ORDER:`/`// SAFETY:` arguments in `src/lib.rs`, the
//! claim-uniqueness regression in the workspace `tests/pool_lifecycle.rs`
//! suite, and the Miri/TSan CI jobs.)
//!
//! Transcription map (state machine ⇄ `src/lib.rs`):
//!
//! | model step | real code |
//! |---|---|
//! | `WorkerStep::Idle` | `worker_loop`'s locked loop: shutdown check, epoch compare, `work.wait` |
//! | `WorkerStep::Run` | `catch_unwind(.. (job.run)(job.ctx) ..)` outside the lock |
//! | `WorkerStep::Post` | re-lock: first-panic record, `running -= 1`, `done.notify_all` at zero |
//! | `SubmitterStep::Acquire` | `broadcast`: wait for the `job` slot, publish job+epoch+running, `work.notify_all` |
//! | `SubmitterStep::Drain` | `broadcast`: wait for `running == 0`, clear slot, take panic, `done.notify_all` |
//! | `ShutterStep` | `ThreadPool::drop`: set `shutdown`, `work.notify_all`, join workers |
//!
//! Checked invariants, on every reachable state:
//! - `running` never underflows, and a claimed epoch always carries a job
//!   (the `expect` in `worker_loop` can never fire);
//! - every worker runs every broadcast job exactly once per epoch;
//! - `broadcast` returns only after all workers finished its job;
//! - the panic slot is empty at publish time (no payload ever bleeds
//!   into a later broadcast), and a drained broadcast receives a payload
//!   iff one of its own workers panicked;
//! - no lost wakeups: the explorer never relies on spurious wakeups, so
//!   any quiescent non-terminal state is reported as a deadlock.
//!
//! The epoch is deliberately modeled as a *wrapping u8* so wraparound is
//! reachable in a handful of submits (the real u64 wraps identically,
//! just astronomically later).

use std::collections::HashSet;

type Epoch = u8;
type JobId = u8;

/// Scheduling-relevant pool state — the model's `PoolState`.
#[derive(Clone, Debug, Default, Hash, PartialEq, Eq)]
struct PoolSt {
    job: Option<JobId>,
    epoch: Epoch,
    running: usize,
    /// Worker id whose panic payload is stored (first writer wins).
    panic: Option<usize>,
    shutdown: bool,
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum WorkerStep {
    /// Top of the locked loop: shutdown check / epoch compare / wait.
    Idle,
    /// Executing the claimed job outside the lock.
    Run(JobId),
    /// Re-locked: record panic, decrement `running`, notify at zero.
    Post(JobId, bool),
    Exited,
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct Worker {
    seen: Epoch,
    step: WorkerStep,
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum SubmitterStep {
    /// Waiting for the job slot, then publishing.
    Acquire,
    /// Waiting for the published job to drain.
    Drain,
    Done,
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct Submitter {
    /// Globally-unique ids of the jobs this submitter broadcasts.
    jobs: Vec<JobId>,
    cur: usize,
    step: SubmitterStep,
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum ShutterStep {
    /// Waiting for its trigger (see [`Shutdown`]).
    Armed,
    /// `shutdown` set; joining the workers.
    Join,
    Done,
}

/// When the modeled `ThreadPool::drop` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shutdown {
    /// No drop in this scenario; terminal = submitters done, workers
    /// parked on the `work` condvar.
    None,
    /// Drop after every submitter finished — the only shape the real
    /// API permits, since `install(&self)` borrows the pool.
    AfterSubmits,
    /// Drop racing a still-queued submitter — *forbidden* by the
    /// borrow discipline; the model proves it would deadlock, which is
    /// exactly why `broadcast` may assume no queued submitter survives
    /// shutdown.
    Concurrent,
}

#[derive(Clone, Debug)]
struct Scenario {
    workers: usize,
    /// Jobs per submitter; ids are assigned contiguously in order.
    submitters: Vec<usize>,
    /// `(job, worker)` pairs whose execution panics.
    panics: Vec<(JobId, usize)>,
    epoch0: Epoch,
    shutdown: Shutdown,
}

impl Scenario {
    fn total_jobs(&self) -> usize {
        self.submitters.iter().sum()
    }
}

/// One node in the interleaving graph. `runs`/`delivered` are history
/// needed by the invariant checks; including them in the hash key only
/// splits states whose observable outcomes differ.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct State {
    st: PoolSt,
    workers: Vec<Worker>,
    submitters: Vec<Submitter>,
    shutter: Option<ShutterStep>,
    /// Worker tids blocked on the `work` condvar.
    wait_work: Vec<usize>,
    /// Submitter tids blocked on the `done` condvar.
    wait_done: Vec<usize>,
    /// `runs[job][worker]`: executions of `job` by `worker`.
    runs: Vec<Vec<u8>>,
    /// Per submitter: the panic source delivered by each completed
    /// broadcast, in order.
    delivered: Vec<Vec<Option<usize>>>,
}

/// Thread ids: workers are `0..W`, submitters `W..W+S`, shutter `W+S`.
impl State {
    fn new(sc: &Scenario) -> State {
        let mut next_job = 0u8;
        let submitters = sc
            .submitters
            .iter()
            .map(|&n| {
                let jobs: Vec<JobId> = (0..n)
                    .map(|_| {
                        let j = next_job;
                        next_job += 1;
                        j
                    })
                    .collect();
                Submitter {
                    jobs,
                    cur: 0,
                    step: SubmitterStep::Acquire,
                }
            })
            .collect();
        State {
            st: PoolSt {
                epoch: sc.epoch0,
                ..PoolSt::default()
            },
            workers: (0..sc.workers)
                .map(|_| Worker {
                    seen: sc.epoch0,
                    step: WorkerStep::Idle,
                })
                .collect(),
            submitters,
            shutter: match sc.shutdown {
                Shutdown::None => None,
                _ => Some(ShutterStep::Armed),
            },
            wait_work: Vec::new(),
            wait_done: Vec::new(),
            runs: vec![vec![0; sc.workers]; sc.total_jobs()],
            delivered: vec![Vec::new(); sc.submitters.len()],
        }
    }

    fn all_submitters_done(&self) -> bool {
        self.submitters
            .iter()
            .all(|s| s.step == SubmitterStep::Done)
    }

    fn all_workers_exited(&self) -> bool {
        self.workers.iter().all(|w| w.step == WorkerStep::Exited)
    }

    fn shutter_trigger_met(&self, sc: &Scenario) -> bool {
        match sc.shutdown {
            Shutdown::None => false,
            Shutdown::AfterSubmits => self.all_submitters_done(),
            Shutdown::Concurrent => true,
        }
    }

    /// Threads that could win the state mutex next.
    fn runnable(&self, sc: &Scenario) -> Vec<usize> {
        let w = self.workers.len();
        let s = self.submitters.len();
        let mut out = Vec::new();
        for (i, worker) in self.workers.iter().enumerate() {
            if worker.step != WorkerStep::Exited && !self.wait_work.contains(&i) {
                out.push(i);
            }
        }
        for (i, sub) in self.submitters.iter().enumerate() {
            let tid = w + i;
            if sub.step != SubmitterStep::Done && !self.wait_done.contains(&tid) {
                out.push(tid);
            }
        }
        match &self.shutter {
            Some(ShutterStep::Armed) if self.shutter_trigger_met(sc) => out.push(w + s),
            // Join models `handle.join()`: runnable once the workers
            // can actually be joined.
            Some(ShutterStep::Join) if self.all_workers_exited() => out.push(w + s),
            _ => {}
        }
        out
    }

    fn wake_work(&mut self) {
        self.wait_work.clear();
    }

    fn wake_done(&mut self) {
        self.wait_done.clear();
    }

    /// Execute one critical section of thread `tid`.
    fn step(&mut self, tid: usize, sc: &Scenario) -> Result<(), String> {
        let w = self.workers.len();
        if tid < w {
            return self.step_worker(tid, sc);
        }
        if tid < w + self.submitters.len() {
            return self.step_submitter(tid - w, sc);
        }
        self.step_shutter();
        Ok(())
    }

    fn step_worker(&mut self, i: usize, sc: &Scenario) -> Result<(), String> {
        match self.workers[i].step.clone() {
            WorkerStep::Idle => {
                if self.st.shutdown {
                    self.workers[i].step = WorkerStep::Exited;
                } else if self.st.epoch != self.workers[i].seen {
                    self.workers[i].seen = self.st.epoch;
                    // The `expect("pool epoch advanced without a job")`
                    // in worker_loop: prove it unreachable.
                    let job = self.st.job.ok_or_else(|| {
                        format!("worker {i}: epoch advanced without a job\n{self:?}")
                    })?;
                    self.workers[i].step = WorkerStep::Run(job);
                } else {
                    self.wait_work.push(i);
                    self.wait_work.sort_unstable();
                }
            }
            WorkerStep::Run(job) => {
                let cell = &mut self.runs[job as usize][i];
                *cell += 1;
                if *cell > 1 {
                    return Err(format!("worker {i} ran job {job} twice\n{self:?}"));
                }
                let panics = sc.panics.iter().any(|&(j, wk)| j == job && wk == i);
                self.workers[i].step = WorkerStep::Post(job, panics);
            }
            WorkerStep::Post(_, panicked) => {
                if panicked && self.st.panic.is_none() {
                    self.st.panic = Some(i);
                }
                if self.st.running == 0 {
                    return Err(format!("worker {i}: running underflow\n{self:?}"));
                }
                self.st.running -= 1;
                if self.st.running == 0 {
                    self.wake_done();
                }
                self.workers[i].step = WorkerStep::Idle;
            }
            WorkerStep::Exited => return Err(format!("worker {i} stepped after exit")),
        }
        Ok(())
    }

    fn step_submitter(&mut self, s: usize, sc: &Scenario) -> Result<(), String> {
        let tid = self.workers.len() + s;
        match self.submitters[s].step.clone() {
            SubmitterStep::Acquire => {
                if self.st.job.is_some() {
                    self.wait_done.push(tid);
                    self.wait_done.sort_unstable();
                    return Ok(());
                }
                if self.st.panic.is_some() {
                    return Err(format!(
                        "submitter {s}: stale panic at publish time\n{self:?}"
                    ));
                }
                let job = self.submitters[s].jobs[self.submitters[s].cur];
                self.st.job = Some(job);
                self.st.epoch = self.st.epoch.wrapping_add(1);
                self.st.running = sc.workers;
                self.wake_work();
                self.submitters[s].step = SubmitterStep::Drain;
            }
            SubmitterStep::Drain => {
                if self.st.running > 0 {
                    self.wait_done.push(tid);
                    self.wait_done.sort_unstable();
                    return Ok(());
                }
                let job = self.submitters[s].jobs[self.submitters[s].cur];
                // Broadcast returns only after every worker ran its job.
                for (wk, count) in self.runs[job as usize].iter().enumerate() {
                    if *count != 1 {
                        return Err(format!(
                            "broadcast of job {job} drained but worker {wk} ran it {count} times\n{self:?}"
                        ));
                    }
                }
                self.st.job = None;
                let payload = self.st.panic.take();
                // The delivered payload belongs to this very broadcast.
                let expected: Vec<usize> = sc
                    .panics
                    .iter()
                    .filter(|&&(j, _)| j == job)
                    .map(|&(_, wk)| wk)
                    .collect();
                match payload {
                    Some(wk) if !expected.contains(&wk) => {
                        return Err(format!(
                            "job {job} delivered a foreign panic from worker {wk}\n{self:?}"
                        ));
                    }
                    None if !expected.is_empty() => {
                        return Err(format!("job {job} lost its panic payload\n{self:?}"));
                    }
                    _ => {}
                }
                self.delivered[s].push(payload);
                self.wake_done();
                self.submitters[s].cur += 1;
                self.submitters[s].step = if self.submitters[s].cur == self.submitters[s].jobs.len()
                {
                    SubmitterStep::Done
                } else {
                    SubmitterStep::Acquire
                };
            }
            SubmitterStep::Done => return Err(format!("submitter {s} stepped after done")),
        }
        Ok(())
    }

    fn step_shutter(&mut self) {
        match self.shutter {
            Some(ShutterStep::Armed) => {
                self.st.shutdown = true;
                self.wake_work();
                self.shutter = Some(ShutterStep::Join);
            }
            Some(ShutterStep::Join) => {
                self.shutter = Some(ShutterStep::Done);
            }
            _ => {}
        }
    }

    fn is_terminal(&self, sc: &Scenario) -> bool {
        if !self.all_submitters_done() {
            return false;
        }
        match sc.shutdown {
            Shutdown::None => self.wait_work.len() == self.workers.len(),
            _ => self.shutter == Some(ShutterStep::Done) && self.all_workers_exited(),
        }
    }

    /// Invariants of a completed execution.
    fn check_final(&self, sc: &Scenario) -> Result<(), String> {
        for (job, per_worker) in self.runs.iter().enumerate() {
            for (wk, count) in per_worker.iter().enumerate() {
                if *count != 1 {
                    return Err(format!(
                        "terminal state: job {job} ran {count} times on worker {wk}\n{self:?}"
                    ));
                }
            }
        }
        if self.st.job.is_some() || self.st.panic.is_some() || self.st.running != 0 {
            return Err(format!("terminal state left residue\n{self:?}"));
        }
        let _ = sc;
        Ok(())
    }
}

/// Exhaustive-exploration summary.
#[derive(Debug)]
struct Report {
    states: usize,
    terminals: usize,
    deadlocks: usize,
    sample_deadlock: Option<String>,
}

/// DFS over every interleaving of critical sections, deduplicating
/// identical states. Returns `Err` on any invariant violation, with the
/// offending state attached.
fn explore(sc: &Scenario) -> Result<Report, String> {
    let init = State::new(sc);
    let mut visited: HashSet<State> = HashSet::new();
    visited.insert(init.clone());
    let mut stack = vec![init];
    let mut terminals = 0usize;
    let mut deadlocks = 0usize;
    let mut sample_deadlock = None;
    while let Some(state) = stack.pop() {
        let runnable = state.runnable(sc);
        if runnable.is_empty() {
            if state.is_terminal(sc) {
                state.check_final(sc)?;
                terminals += 1;
            } else {
                deadlocks += 1;
                sample_deadlock.get_or_insert_with(|| format!("{state:?}"));
            }
            continue;
        }
        for tid in runnable {
            let mut next = state.clone();
            next.step(tid, sc)?;
            if visited.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    Ok(Report {
        states: visited.len(),
        terminals,
        deadlocks,
        sample_deadlock,
    })
}

fn assert_clean(sc: Scenario) -> Report {
    let label = format!("{sc:?}");
    let report = explore(&sc).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(
        report.deadlocks == 0,
        "{label}: deadlock reachable:\n{}",
        report.sample_deadlock.as_deref().unwrap_or("")
    );
    assert!(report.terminals > 0, "{label}: no terminal state reached");
    report
}

#[test]
fn broadcast_drains_completely_across_all_interleavings() {
    for workers in 1..=3 {
        for jobs in 1..=2 {
            let report = assert_clean(Scenario {
                workers,
                submitters: vec![jobs],
                panics: vec![],
                epoch0: 0,
                shutdown: Shutdown::None,
            });
            // The explorer actually explored something nontrivial.
            assert!(report.states > workers, "{report:?}");
        }
    }
}

#[test]
fn concurrent_submitters_serialize_on_the_job_slot() {
    // Two submitters race for the slot; every interleaving must drain
    // each broadcast fully (exactly-once per worker) with no deadlock
    // on the shared `done` condvar (queued submitters and drain-waiters
    // share it).
    for submitters in [vec![1, 1], vec![2, 1], vec![2, 2]] {
        assert_clean(Scenario {
            workers: 2,
            submitters,
            panics: vec![],
            epoch0: 0,
            shutdown: Shutdown::None,
        });
    }
}

#[test]
fn epoch_wraparound_is_invisible_to_the_protocol() {
    // The epoch counter is a wrapping u8 here (u64 in the real pool);
    // starting at the top makes several submits cross the wrap. A
    // worker can never sleep through a whole epoch (each epoch requires
    // every worker's decrement before the next publish), so `seen`
    // aliasing is impossible — which is exactly what exhaustive
    // exploration confirms.
    for epoch0 in [253u8, 254, 255] {
        assert_clean(Scenario {
            workers: 2,
            submitters: vec![3],
            panics: vec![],
            epoch0,
            shutdown: Shutdown::None,
        });
    }
}

#[test]
fn panic_is_delivered_to_its_own_broadcast_only() {
    // Worker 1 panics in job 0; job 1 must complete clean. The step
    // assertions prove: payload delivered to the panicking broadcast,
    // never leaked into the next, pool reusable afterwards.
    let report = assert_clean(Scenario {
        workers: 2,
        submitters: vec![2],
        panics: vec![(0, 1)],
        epoch0: 0,
        shutdown: Shutdown::None,
    });
    assert!(report.states > 10, "{report:?}");
}

#[test]
fn first_panic_wins_when_several_workers_panic() {
    // All workers panic in the same epoch: exactly one payload (the
    // first Post to win the lock) is stored and delivered; the rest are
    // dropped, matching catch_unwind-payload semantics in worker_loop.
    assert_clean(Scenario {
        workers: 3,
        submitters: vec![1],
        panics: vec![(0, 0), (0, 1), (0, 2)],
        epoch0: 0,
        shutdown: Shutdown::None,
    });
}

#[test]
fn panic_then_clean_job_across_submitters() {
    assert_clean(Scenario {
        workers: 2,
        submitters: vec![1, 1],
        panics: vec![(0, 0)],
        epoch0: 0,
        shutdown: Shutdown::None,
    });
}

#[test]
fn shutdown_after_drain_joins_every_worker() {
    // ThreadPool::drop after the last install returned: every
    // interleaving of the shutdown broadcast must wake all parked
    // workers (no lost wakeup) and join them.
    for workers in 1..=3 {
        for jobs in [1, 2] {
            assert_clean(Scenario {
                workers,
                submitters: vec![jobs],
                panics: vec![],
                epoch0: 0,
                shutdown: Shutdown::AfterSubmits,
            });
        }
    }
}

#[test]
fn shutdown_after_panicky_run_still_joins() {
    assert_clean(Scenario {
        workers: 2,
        submitters: vec![2],
        panics: vec![(1, 0)],
        epoch0: 0,
        shutdown: Shutdown::AfterSubmits,
    });
}

#[test]
fn shutdown_racing_a_queued_submitter_deadlocks_in_the_model() {
    // A drop racing a not-yet-published broadcast: once `shutdown` is
    // set, workers exit without touching any later-published job, so
    // the submitter waits on `running > 0` forever. The model MUST find
    // this deadlock — it is the reason `ThreadPool::install(&self)`
    // borrowing the pool (making drop-while-queued unrepresentable in
    // safe code) is load-bearing, and it proves the explorer has teeth.
    let sc = Scenario {
        workers: 2,
        submitters: vec![1],
        panics: vec![],
        epoch0: 0,
        shutdown: Shutdown::Concurrent,
    };
    let report = explore(&sc).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.deadlocks > 0,
        "expected the drop-vs-queued-submitter deadlock to be reachable: {report:?}"
    );
    // Interleavings where the submitter published first still complete.
    assert!(report.terminals > 0, "{report:?}");
}
