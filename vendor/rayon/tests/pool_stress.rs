//! Seeded preemption-injecting stress suite for the persistent pool.
//!
//! Complements the exhaustive protocol model in `pool_model.rs`: the
//! model proves the epoch-broadcast *protocol* correct over every
//! interleaving of its critical sections, while this suite drives the
//! *real* implementation — claim cursor, slab writes, catch_unwind
//! plumbing and all — under deterministic scheduling pressure. Each cell
//! derives its perturbation schedule (spin/yield jitter, panic sites)
//! from a SplitMix64 stream keyed by `(seed, index)`, so a failing cell
//! reproduces from its printed parameters alone.
//!
//! This is the suite the ThreadSanitizer CI job runs (see
//! `scripts/check_concurrency.sh`): the jitter widens the window for
//! claim/slab races, which is exactly what TSan instruments for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// SplitMix64: tiny, deterministic, good diffusion — the same generator
/// the workspace uses for seed derivation elsewhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-item scheduling perturbation: sometimes spin,
/// sometimes yield, sometimes run straight through. The *decision* is
/// reproducible; the resulting OS interleaving is the fuzz.
fn jitter(word: u64) {
    match word % 8 {
        0 => std::thread::yield_now(),
        1..=3 => {
            for _ in 0..(word >> 56) {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// A cheap but seed-dependent payload computation.
fn work_item(seed: u64, i: usize) -> u64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let w = splitmix64(&mut s);
    jitter(w);
    w ^ splitmix64(&mut s)
}

#[test]
fn seeded_grid_sweep_is_deterministic_and_ordered() {
    const N: usize = 257; // prime: never divides evenly into chunks
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_5EED_5EED_5EED] {
        // Sequential reference.
        let expect: Vec<u64> = (0..N).map(|i| work_item(seed, i)).collect();
        for threads in [2usize, 3, 4] {
            for min_len in [Some(1), Some(3), None] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let got: Vec<u64> = pool.install(|| {
                    let it = (0..N).into_par_iter();
                    let it = match min_len {
                        Some(m) => it.with_min_len(m),
                        None => it,
                    };
                    it.map(|i| work_item(seed, i)).collect()
                });
                assert_eq!(
                    got, expect,
                    "seed={seed:#x} threads={threads} min_len={min_len:?}"
                );
            }
        }
    }
}

#[test]
fn panic_storm_leaves_the_pool_reusable() {
    // Alternate panicking and clean broadcasts on one long-lived pool.
    // Panic sites are seed-derived; every payload must surface on the
    // submitting thread, and the very next broadcast must run clean.
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let mut rng = 0x00C0_FFEEu64;
    for round in 0..20 {
        let bomb = splitmix64(&mut rng) as usize % 64;
        let stormy = round % 2 == 0;
        let result: Result<Vec<u64>, _> = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        jitter(i as u64 ^ round);
                        if stormy && i == bomb {
                            panic!("storm {round} at {i}");
                        }
                        i as u64 * 3
                    })
                    .collect()
            })
        }));
        if stormy {
            let payload = result.expect_err("injected panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains(&format!("storm {round}")), "got: {msg}");
        } else {
            let got = result.expect("clean round must not panic");
            assert_eq!(got, (0..64).map(|i| i * 3).collect::<Vec<u64>>());
        }
    }
}

#[test]
fn concurrent_submitters_queue_on_the_job_slot() {
    // Several OS threads share one pool and install concurrently,
    // exercising the queued-submitter wait in `broadcast` (the model's
    // `SubmitterStep::Acquire` blocking case) under real contention.
    let pool = Arc::new(ThreadPoolBuilder::new().num_threads(2).build().unwrap());
    let total = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for sub in 0..4u64 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            scope.spawn(move || {
                for round in 0..8 {
                    let got: Vec<u64> = pool.install(|| {
                        (0..96)
                            .into_par_iter()
                            .with_min_len(1)
                            .map(|i| {
                                jitter(sub << 32 | round << 16 | i as u64);
                                i as u64
                            })
                            .collect()
                    });
                    let sum: u64 = got.iter().sum();
                    assert_eq!(sum, 95 * 96 / 2, "submitter {sub} round {round}");
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * 8);
}

#[test]
fn rapid_build_drop_cycles_join_cleanly() {
    // Pools built, (sometimes) used once, and dropped in a tight loop:
    // shutdown must always wake and join every worker, including workers
    // that never ran a single job.
    let mut rng = 0x0BAD_5EEDu64;
    for cycle in 0..24 {
        let threads = 2 + (splitmix64(&mut rng) as usize % 3);
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        if cycle % 3 != 0 {
            let got: Vec<usize> = pool.install(|| {
                (0..40)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        jitter(cycle ^ i as u64);
                        i + 1
                    })
                    .collect()
            });
            assert_eq!(got.len(), 40);
        }
        drop(pool); // joins all workers; hangs here = lost wakeup
    }
}

/// Element whose drop is tallied per index: catches double drops (the
/// slab double-initializing a slot) and, on clean runs, missed drops.
struct Tracked {
    idx: usize,
    flags: Arc<Vec<AtomicU8>>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        let prev = self.flags[self.idx].fetch_add(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "element {} dropped twice", self.idx);
    }
}

#[test]
fn slab_elements_drop_exactly_once_on_clean_runs() {
    const N: usize = 128;
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let flags: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
    let out: Vec<Tracked> = pool.install(|| {
        (0..N)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                jitter(i as u64);
                Tracked {
                    idx: i,
                    flags: Arc::clone(&flags),
                }
            })
            .collect()
    });
    assert_eq!(out.len(), N);
    drop(out);
    for (i, flag) in flags.iter().enumerate() {
        assert_eq!(flag.load(Ordering::Relaxed), 1, "element {i} not dropped");
    }
}

#[test]
fn panicked_run_never_double_drops() {
    // On a panicking broadcast the slab is abandoned at length zero:
    // already-written elements intentionally leak, but nothing may drop
    // twice and nothing may read uninitialized slots. The `Tracked`
    // drop assertion enforces the former; Miri checks the latter.
    const N: usize = 64;
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    let flags: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
    let result: Result<Vec<Tracked>, _> = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..N)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| {
                    jitter(i as u64);
                    if i == N / 2 {
                        panic!("mid-run bomb");
                    }
                    Tracked {
                        idx: i,
                        flags: Arc::clone(&flags),
                    }
                })
                .collect()
        })
    }));
    assert!(result.is_err());
    for (i, flag) in flags.iter().enumerate() {
        assert!(
            flag.load(Ordering::Relaxed) <= 1,
            "element {i} dropped more than once after panic"
        );
    }
    // The pool survives for the next caller.
    let ok: Vec<usize> = pool.install(|| (0..8).into_par_iter().map(|i| i).collect());
    assert_eq!(ok, (0..8).collect::<Vec<usize>>());
}
