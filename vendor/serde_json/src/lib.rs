//! Minimal offline stand-in for `serde_json`: prints and parses the
//! serde stand-in's [`Value`] model.
//!
//! Fidelity notes: integers round-trip exactly across the full
//! `u64`/`i64` range (they are kept out of the `f64` lane), and floats
//! are printed with Rust's shortest-round-trip `{:?}` formatting, so a
//! serialize/deserialize cycle is bit-exact for finite values. Non-finite
//! floats print as `null` (matching serde_json's behaviour for the
//! pretty printers this workspace uses).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
///
/// # Errors
/// Never fails for the value model this stand-in supports.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
///
/// # Errors
/// Never fails for the value model this stand-in supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string.
///
/// # Errors
/// Returns a message describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value().map_err(Error)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, depth + 1);
            });
        }
        Value::Object(entries) => {
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, out, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected input {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(u) = rest.parse::<u64>() {
                    if let Ok(i) = i64::try_from(u).map(|i| -i) {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let v: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(v, u64::MAX);
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x.to_bits(), 0.1f64.to_bits());
        let s: String = from_str(&to_string("a\"b\\c\nd").unwrap()).unwrap();
        assert_eq!(s, "a\"b\\c\nd");
        let o: Option<usize> = from_str("null").unwrap();
        assert_eq!(o, None);
        let t: Vec<(u32, u32)> = from_str("[[20, 33], [34, 47]]").unwrap();
        assert_eq!(t, vec![(20, 33), (34, 47)]);
        let a: [u64; 4] = from_str(&to_string(&[1u64, 2, 3, u64::MAX]).unwrap()).unwrap();
        assert_eq!(a, [1, 2, 3, u64::MAX]);
    }

    #[test]
    fn negative_and_float_numbers() {
        let i: i64 = from_str("-42").unwrap();
        assert_eq!(i, -42);
        let x: f64 = from_str("-1.5e3").unwrap();
        assert_eq!(x, -1500.0);
    }
}
