//! Minimal offline stand-in for `proptest`: the `proptest!` macro runs
//! each test body over `ProptestConfig::cases` randomly generated inputs
//! drawn from [`strategy::Strategy`] values. Failing inputs are reported
//! via panic (no shrinking); `prop_assume!` rejects a case without
//! counting it. Generation is deterministic per test (seeded from the
//! test's module path and name), so failures reproduce across runs.

/// Runner configuration, RNG and case-level error type.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — draw a fresh case instead.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator used for input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below: empty range");
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            let max = (1u64 << 53) - 1;
            self.below(max + 1) as f64 / max as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64_inclusive() * (hi - lo)
        }
    }

    /// A fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with elements from `element` and a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// The imports test files expect from `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests (see crate docs).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u64 = 0;
                while __accepted < __cfg.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= u64::from(__cfg.cases) * 64 + 1024,
                        "proptest: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!("proptest case failed: {}", __msg),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {:?} == {:?}",
                            __l, __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: {:?} != {:?}", __l, __r),
                    ));
                }
            }
        }
    };
}

/// Reject the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
