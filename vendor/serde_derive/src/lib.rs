//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in. No `syn`/`quote`: the item is parsed directly
//! from the token stream, which is sufficient because this workspace only
//! derives on named-field structs (no generics) and unit-variant enums.
//!
//! Supported attributes:
//! * container: `#[serde(rename_all = "snake_case")]` (enums)
//! * field: `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip)]` (combinable, e.g. `skip, default = "path")`)
//!
//! Matching real serde semantics where it matters here: missing
//! `Option<T>` fields deserialize to `None` without needing `default`,
//! unknown JSON fields are ignored, and `skip` fields are neither written
//! nor read (reconstructed from their default).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.gen_serialize()
        .parse()
        .expect("serde_derive: generated code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.gen_deserialize()
        .parse()
        .expect("serde_derive: generated code")
}

/// One named struct field with its serde attributes.
struct Field {
    name: String,
    /// `#[serde(skip)]` present.
    skip: bool,
    /// `#[serde(default)]` present (use `Default::default()` if missing).
    default_std: bool,
    /// `#[serde(default = "path")]` function path.
    default_fn: Option<String>,
    /// First identifier of the field type (detects `Option`).
    type_head: String,
}

enum Shape {
    Struct(Vec<Field>),
    /// Unit variants, with their (possibly renamed) wire names.
    Enum(Vec<(String, String)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Serde attribute items collected from one `#[serde(...)]` group.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default_std: bool,
    default_fn: Option<String>,
    rename_all: Option<String>,
}

fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    // Tokens are `serde ( ... )`.
    let inner = match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(g)] if id.to_string() == "serde" => g.stream(),
        _ => return,
    };
    let items: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        if let TokenTree::Ident(id) = &items[i] {
            let key = id.to_string();
            let has_eq = matches!(
                items.get(i + 1),
                Some(TokenTree::Punct(p)) if p.as_char() == '='
            );
            if has_eq {
                let lit = match items.get(i + 2) {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => panic!("serde_derive: expected literal after {key} =, got {other:?}"),
                };
                let unquoted = lit.trim_matches('"').to_string();
                match key.as_str() {
                    "default" => out.default_fn = Some(unquoted),
                    "rename_all" => out.rename_all = Some(unquoted),
                    other => panic!("serde_derive: unsupported attribute {other}"),
                }
                i += 3;
            } else {
                match key.as_str() {
                    "skip" => out.skip = true,
                    "default" => out.default_std = true,
                    other => panic!("serde_derive: unsupported attribute {other}"),
                }
                i += 1;
            }
        } else {
            // Separator commas.
            i += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container = SerdeAttrs::default();

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g, &mut container);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by this stand-in");
    }
    let body = match tokens.get(i + 2) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for {name}, got {other:?}"),
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body, container.rename_all.as_deref())),
        other => panic!("serde_derive: unsupported item kind {other}"),
    };
    Item { name, shape }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        // Field attributes (doc comments included).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                parse_serde_attr(g, &mut attrs);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field {name}, got {other:?}"),
        }
        // Type tokens until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        let mut type_head = String::new();
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Ident(id) if type_head.is_empty() => {
                    type_head = id.to_string();
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
            default_std: attrs.default_std,
            default_fn: attrs.default_fn,
            type_head,
        });
    }
    fields
}

fn parse_variants(body: TokenStream, rename_all: Option<&str>) -> Vec<(String, String)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                // Reject data-carrying variants.
                if let Some(TokenTree::Group(_)) = tokens.get(i + 1) {
                    panic!("serde_derive: only unit enum variants are supported");
                }
                let wire = match rename_all {
                    Some("snake_case") => to_snake_case(&variant),
                    Some(other) => panic!("serde_derive: unsupported rename_all = {other}"),
                    None => variant.clone(),
                };
                variants.push((variant, wire));
                i += 1;
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn to_snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Item {
    fn gen_serialize(&self) -> String {
        match &self.shape {
            Shape::Struct(fields) => {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    pushes.push_str(&format!(
                        "__fields.push((String::from(\"{n}\"), \
                         ::serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    ));
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(__fields)\n\
                     }}\n}}\n",
                    name = self.name
                )
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (variant, wire) in variants {
                    arms.push_str(&format!(
                        "Self::{variant} => ::serde::Value::Str(String::from(\"{wire}\")),\n"
                    ));
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                     }}\n}}\n",
                    name = self.name
                )
            }
        }
    }

    fn gen_deserialize(&self) -> String {
        match &self.shape {
            Shape::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let missing = if let Some(path) = &f.default_fn {
                        format!("{path}()")
                    } else if f.default_std {
                        "::std::default::Default::default()".to_string()
                    } else if f.type_head == "Option" {
                        "::std::option::Option::None".to_string()
                    } else {
                        format!(
                            "return Err(String::from(\"missing field {n} in {name}\"))",
                            n = f.name,
                            name = self.name
                        )
                    };
                    if f.skip {
                        inits.push_str(&format!("{n}: {missing},\n", n = f.name));
                    } else {
                        inits.push_str(&format!(
                            "{n}: match __v.get_field(\"{n}\") {{\n\
                             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             None => {missing},\n\
                             }},\n",
                            n = f.name
                        ));
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, String> {{\n\
                     if __v.as_object().is_none() {{\n\
                     return Err(String::from(\"expected object for {name}\"));\n\
                     }}\n\
                     Ok(Self {{\n{inits}}})\n\
                     }}\n}}\n",
                    name = self.name
                )
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for (variant, wire) in variants {
                    arms.push_str(&format!("\"{wire}\" => Ok(Self::{variant}),\n"));
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, String> {{\n\
                     match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {arms}\
                     __other => Err(format!(\"unknown {name} variant {{__other}}\")),\n\
                     }},\n\
                     _ => Err(String::from(\"expected string for {name}\")),\n\
                     }}\n\
                     }}\n}}\n",
                    name = self.name
                )
            }
        }
    }
}
