//! Minimal offline stand-in for `criterion`: wall-clock timing with the
//! same bench-definition API surface (`Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) but none of the statistics machinery. Each
//! benchmark is warmed up briefly, then timed over an adaptive number of
//! iterations, and the mean time per iteration is printed.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Every measurement taken by this process, in execution order, for the
/// machine-readable summary written by [`write_summary_json`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// One finished measurement.
struct BenchRecord {
    name: String,
    mean_ns: f64,
    iterations: u64,
}

/// Measurement back-ends (name-compatible with upstream; only wall-clock
/// timing exists here).
pub mod measurement {
    /// Wall-clock time measurement (the upstream default).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple reporting.
    BytesDecimal(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted name types into a display string.
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
    total_iterations: u64,
}

/// Number of equal batches the measurement budget is split into. The
/// recorded figure is the mean of the *fastest* batch: the benchmarked
/// routines are deterministic CPU-bound code, so the least-interrupted
/// batch estimates the code's cost while a whole-window arithmetic mean
/// estimates the host's background load (this runs on shared single-vCPU
/// CI boxes, where the two differ by 10-30%). Same estimator `timeit`
/// recommends; upstream criterion's bootstrap point estimate is likewise
/// outlier-robust, which the previous single-window mean was not.
///
/// Batch count sizes the window the minimum gets to sample: at 20
/// batches a mid-weight bench's batch spans several milliseconds, and
/// on a busy single-vCPU host nearly every window that long contains
/// *some* preemption, so the "fastest batch" still tracked ambient
/// load. 100 batches keeps windows near or below a scheduler tick
/// while each still holds enough iterations that timer granularity is
/// noise-level. Benches whose single iteration overruns the budget
/// drop to [`MIN_BATCHES`] one-iteration batches instead of 100 —
/// there a window already spans many ticks, so extra repeats buy
/// little and cost seconds each.
const MEASURE_BATCHES: u64 = 100;

/// Floor on the batch count for budget-overrunning benches.
const MIN_BATCHES: u64 = 5;

impl Bencher {
    /// Time `routine`, first warming up, then iterating until the
    /// measurement budget is spent, in [`MEASURE_BATCHES`] batches;
    /// reports the fastest batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & per-iteration estimate.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let per_iter = warm_start.elapsed().max(Duration::from_nanos(1));
        let target: u64 =
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let per_batch = (target / MEASURE_BATCHES).max(1);
        let batches = (target / per_batch).clamp(MIN_BATCHES, MEASURE_BATCHES);
        let mut best: Option<Duration> = None;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if best.is_none_or(|b| elapsed < b) {
                best = Some(elapsed);
            }
        }
        self.elapsed = best.unwrap_or_default();
        self.iterations = per_batch;
        // What the record advertises: every timed execution, not just the
        // fastest batch's share. A single-iteration capture (the sign of
        // a budget-overrunning bench run only once) is impossible by
        // construction — MIN_BATCHES bounds this from below — and gates
        // like `check_scaling` reject summaries claiming fewer than 2.
        self.total_iterations = batches * per_batch;
    }
}

fn report(name: &str, throughput: Option<Throughput>, b: &Bencher) {
    if b.iterations == 0 {
        println!("{name:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    if let Ok(mut results) = RESULTS.lock() {
        results.push(BenchRecord {
            name: name.to_string(),
            mean_ns: per_iter * 1e9,
            iterations: b.total_iterations,
        });
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "{name:<50} {:>12.3} µs/iter  ({} iters){rate}",
        per_iter * 1e6,
        b.total_iterations
    );
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            total_iterations: 0,
        };
        f(&mut b);
        report(name, None, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix. The measurement
/// type parameter mirrors upstream's signature (only
/// [`measurement::WallTime`] exists here).
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the per-iteration sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            total_iterations: 0,
        };
        f(&mut b);
        report(&full, self.throughput, &b);
        self
    }

    /// Measure two routines head-to-head in alternating rounds and
    /// record both, one [`BenchRecord`] each, under the usual
    /// `group/id` names.
    ///
    /// [`Self::bench_function`] times each benchmark in its own
    /// contiguous window, so on a host whose background load drifts on
    /// a seconds timescale (shared CI boxes), two benchmarks meant to
    /// be *compared* — same workload, different strategy — can land in
    /// different load regimes and the comparison measures the host, not
    /// the code. Interleaving rounds `a, b, a, b, …` gives both sides
    /// the same exposure to every load phase; taking each side's
    /// fastest round then compares their least-interrupted executions,
    /// the same estimator [`Bencher::iter`] uses per batch.
    ///
    /// Gates that ratio two bench entries (e.g. the e2e sync-vs-
    /// pipelined throughput gate) should measure them with this so the
    /// ratio stays meaningful on noisy hosts.
    pub fn bench_pair<Ia, Ib, Fa, Fb, Oa, Ob>(
        &mut self,
        id_a: Ia,
        mut a: Fa,
        id_b: Ib,
        mut b: Fb,
    ) -> &mut Self
    where
        Ia: IntoBenchmarkId,
        Ib: IntoBenchmarkId,
        Fa: FnMut() -> Oa,
        Fb: FnMut() -> Ob,
    {
        // Warm-up doubles as the round-count estimate, exactly like
        // `Bencher::iter`; the slower side sets the budget split.
        let warm_start = Instant::now();
        std::hint::black_box(a());
        let per_a = warm_start.elapsed();
        let warm_start = Instant::now();
        std::hint::black_box(b());
        let per_b = warm_start.elapsed();
        let per_round = per_a.max(per_b).max(Duration::from_nanos(1));
        let rounds: u64 = (MEASURE_BUDGET.as_nanos() / per_round.as_nanos().max(1))
            .clamp(MIN_BATCHES as u128, MEASURE_BATCHES as u128) as u64;
        let mut best_a: Option<Duration> = None;
        let mut best_b: Option<Duration> = None;
        for _ in 0..rounds {
            let start = Instant::now();
            std::hint::black_box(a());
            let ea = start.elapsed();
            if best_a.is_none_or(|t| ea < t) {
                best_a = Some(ea);
            }
            let start = Instant::now();
            std::hint::black_box(b());
            let eb = start.elapsed();
            if best_b.is_none_or(|t| eb < t) {
                best_b = Some(eb);
            }
        }
        for (id, best) in [(id_a.into_name(), best_a), (id_b.into_name(), best_b)] {
            let bench = Bencher {
                elapsed: best.unwrap_or_default(),
                iterations: 1,
                total_iterations: rounds,
            };
            report(&format!("{}/{id}", self.name), self.throughput, &bench);
        }
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Suite name derived from the bench binary's file stem: cargo names the
/// binary `<target>-<hash>`, so `bench_sim-0a1b2c3d` becomes `sim`.
fn suite_name() -> String {
    let stem = std::env::args()
        .next()
        .map(PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    let base = match stem.rsplit_once('-') {
        Some((head, tail)) if tail.chars().all(|c| c.is_ascii_hexdigit()) => head.to_string(),
        _ => stem,
    };
    base.strip_prefix("bench_")
        .map_or(base.clone(), String::from)
}

/// Directory the summary lands in: the enclosing repository root (the
/// first ancestor of the working directory holding `.git`), so every
/// suite writes to one predictable place regardless of which package
/// `cargo bench` set as the working directory. Overridable with
/// `BENCH_JSON_DIR`; falls back to the working directory itself.
fn summary_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = cwd.clone();
    loop {
        if probe.join(".git").exists() {
            return probe;
        }
        if !probe.pop() {
            return cwd;
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write the machine-readable run summary — `BENCH_<suite>.json` at the
/// repository root — from every measurement taken so far. Called
/// automatically at the end of [`criterion_main!`]; harmless when no
/// benchmarks ran (writes an empty benchmark list).
pub fn write_summary_json() {
    let suite = suite_name();
    let path = summary_dir().join(format!("BENCH_{suite}.json"));
    let results = match RESULTS.lock() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(&suite)));
    body.push_str("  \"unit\": \"ns/iter\",\n");
    body.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"iterations\": {}}}{comma}\n",
            json_escape(&r.name),
            r.mean_ns,
            r.iterations
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Define a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_summary_json();
        }
    };
}
