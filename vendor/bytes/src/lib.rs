//! Minimal offline stand-in for the `bytes` crate, covering only the
//! subset this workspace uses: `Bytes` (cheaply clonable immutable byte
//! buffer), `BytesMut` (growable builder), and the little-endian
//! read/write halves of `Buf`/`BufMut`.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self {
            data: Arc::new(v.to_vec()),
        }
    }
}

/// Growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read half: sequential little-endian decoding from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current unread contents.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write half: sequential little-endian encoding into a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(14);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u16_le(7);
        b.put_u64_le(u64::MAX - 1);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 14);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }
}
