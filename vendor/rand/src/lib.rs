//! Minimal offline stand-in for `rand`: the `Rng` extension trait with
//! `random_range` over half-open numeric ranges, blanket-implemented for
//! every `RngCore`.

pub use rand_core::RngCore;

use std::ops::Range;

/// Types a range can be sampled over.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (bias negligible for test use).
                let x = rng.next_u64();
                let off = (((x as u128) * (span as u128)) >> 64) as u64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
